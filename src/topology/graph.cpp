#include "topology/graph.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/assert.h"
#include "common/error.h"

namespace mmlpt::topo {

std::uint16_t MultipathGraph::add_hop() {
  hops_.emplace_back();
  return static_cast<std::uint16_t>(hops_.size() - 1);
}

VertexId MultipathGraph::add_vertex(std::uint16_t hop, net::Ipv4Address addr) {
  MMLPT_EXPECTS(hop < hops_.size());
  if (!addr.is_unspecified() && find(addr) != kInvalidVertex) {
    throw TopologyError("duplicate vertex address " + addr.to_string());
  }
  const auto id = static_cast<VertexId>(vertices_.size());
  vertices_.push_back({addr, hop});
  hops_[hop].push_back(id);
  succ_.emplace_back();
  pred_.emplace_back();
  return id;
}

void MultipathGraph::add_edge(VertexId from, VertexId to) {
  MMLPT_EXPECTS(from < vertices_.size() && to < vertices_.size());
  if (vertices_[to].hop != vertices_[from].hop + 1) {
    throw TopologyError("edge must join adjacent hops (" +
                        std::to_string(vertices_[from].hop) + " -> " +
                        std::to_string(vertices_[to].hop) + ")");
  }
  if (has_edge(from, to)) return;
  succ_[from].push_back(to);
  pred_[to].push_back(from);
  ++edge_count_;
}

const Vertex& MultipathGraph::vertex(VertexId v) const {
  MMLPT_EXPECTS(v < vertices_.size());
  return vertices_[v];
}

std::span<const VertexId> MultipathGraph::vertices_at(
    std::uint16_t hop) const {
  MMLPT_EXPECTS(hop < hops_.size());
  return hops_[hop];
}

std::span<const VertexId> MultipathGraph::successors(VertexId v) const {
  MMLPT_EXPECTS(v < vertices_.size());
  return succ_[v];
}

std::span<const VertexId> MultipathGraph::predecessors(VertexId v) const {
  MMLPT_EXPECTS(v < vertices_.size());
  return pred_[v];
}

VertexId MultipathGraph::find(net::Ipv4Address addr) const noexcept {
  if (addr.is_unspecified()) return kInvalidVertex;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (vertices_[v].addr == addr) return v;
  }
  return kInvalidVertex;
}

VertexId MultipathGraph::find_at(std::uint16_t hop,
                                 net::Ipv4Address addr) const noexcept {
  if (hop >= hops_.size() || addr.is_unspecified()) return kInvalidVertex;
  for (VertexId v : hops_[hop]) {
    if (vertices_[v].addr == addr) return v;
  }
  return kInvalidVertex;
}

bool MultipathGraph::has_edge(VertexId from, VertexId to) const noexcept {
  if (from >= vertices_.size()) return false;
  return std::find(succ_[from].begin(), succ_[from].end(), to) !=
         succ_[from].end();
}

std::vector<double> MultipathGraph::reach_probabilities() const {
  if (hops_.empty()) return {};
  if (hops_[0].size() != 1) {
    throw TopologyError(
        "reach_probabilities requires a single vertex at hop 0");
  }
  std::vector<double> p(vertices_.size(), 0.0);
  p[hops_[0][0]] = 1.0;
  for (std::size_t h = 0; h + 1 < hops_.size(); ++h) {
    for (VertexId v : hops_[h]) {
      const auto& next = succ_[v];
      if (next.empty()) continue;
      const double share = p[v] / static_cast<double>(next.size());
      for (VertexId s : next) p[s] += share;
    }
  }
  return p;
}

void MultipathGraph::validate() const {
  for (std::size_t h = 0; h < hops_.size(); ++h) {
    if (hops_[h].empty()) {
      throw TopologyError("hop " + std::to_string(h) + " has no vertices");
    }
    for (VertexId v : hops_[h]) {
      if (h + 1 < hops_.size() && succ_[v].empty()) {
        throw TopologyError("vertex " + vertices_[v].addr.to_string() +
                            " at hop " + std::to_string(h) +
                            " has no successor");
      }
      if (h > 0 && pred_[v].empty()) {
        throw TopologyError("vertex " + vertices_[v].addr.to_string() +
                            " at hop " + std::to_string(h) +
                            " has no predecessor");
      }
    }
  }
}

std::string MultipathGraph::to_string() const {
  std::ostringstream out;
  for (std::uint16_t h = 0; h < hops_.size(); ++h) {
    out << "hop " << h << ":";
    for (VertexId v : hops_[h]) {
      out << ' '
          << (vertices_[v].addr.is_unspecified() ? std::string("*")
                                                 : vertices_[v].addr.to_string());
      if (!succ_[v].empty()) {
        out << "->[";
        for (std::size_t i = 0; i < succ_[v].size(); ++i) {
          if (i > 0) out << ',';
          out << vertices_[succ_[v][i]].addr.to_string();
        }
        out << ']';
      }
    }
    out << '\n';
  }
  return out.str();
}

namespace {

/// Address-level edge set of a graph.
std::vector<std::pair<net::IpAddress, net::IpAddress>> edge_set(
    const MultipathGraph& g) {
  std::vector<std::pair<net::IpAddress, net::IpAddress>> edges;
  for (std::uint16_t h = 0; h < g.hop_count(); ++h) {
    for (VertexId v : g.vertices_at(h)) {
      for (VertexId s : g.successors(v)) {
        edges.emplace_back(g.vertex(v).addr, g.vertex(s).addr);
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

}  // namespace

bool same_topology(const MultipathGraph& a, const MultipathGraph& b) {
  if (a.hop_count() != b.hop_count()) return false;
  for (std::uint16_t h = 0; h < a.hop_count(); ++h) {
    std::vector<net::IpAddress> av;
    std::vector<net::IpAddress> bv;
    for (VertexId v : a.vertices_at(h)) av.push_back(a.vertex(v).addr);
    for (VertexId v : b.vertices_at(h)) bv.push_back(b.vertex(v).addr);
    std::sort(av.begin(), av.end());
    std::sort(bv.begin(), bv.end());
    if (av != bv) return false;
  }
  return edge_set(a) == edge_set(b);
}

MultipathGraph map_to_ipv6(const MultipathGraph& g) {
  const auto map_addr = [](const net::IpAddress& addr) {
    if (addr.is_v6() || addr.is_unspecified()) return addr;
    // 2001:db8:4::a.b.c.d — the documentation prefix with a "4" site
    // marking the embedding, original v4 bytes in the low 32 bits.
    return net::IpAddress::v6(0x20010db8'00040000ULL, addr.value());
  };
  MultipathGraph mapped;
  std::vector<VertexId> ids(g.vertex_count(), kInvalidVertex);
  for (std::uint16_t h = 0; h < g.hop_count(); ++h) {
    mapped.add_hop();
    for (const VertexId v : g.vertices_at(h)) {
      ids[v] = mapped.add_vertex(h, map_addr(g.vertex(v).addr));
    }
  }
  for (std::uint16_t h = 0; h < g.hop_count(); ++h) {
    for (const VertexId v : g.vertices_at(h)) {
      for (const VertexId s : g.successors(v)) {
        mapped.add_edge(ids[v], ids[s]);
      }
    }
  }
  return mapped;
}

DiscoveryCount count_discovered(const MultipathGraph& truth,
                                const MultipathGraph& found) {
  DiscoveryCount count;
  for (std::uint16_t h = 0;
       h < std::min(truth.hop_count(), found.hop_count()); ++h) {
    for (VertexId v : found.vertices_at(h)) {
      const VertexId t = truth.find_at(h, found.vertex(v).addr);
      if (t == kInvalidVertex) continue;
      ++count.vertices;
      for (VertexId s : found.successors(v)) {
        const VertexId ts = truth.find_at(h + 1, found.vertex(s).addr);
        if (ts != kInvalidVertex && truth.has_edge(t, ts)) ++count.edges;
      }
    }
  }
  return count;
}

}  // namespace mmlpt::topo
