// Exception hierarchy for the mmlpt library (Core Guidelines E.14).
#ifndef MMLPT_COMMON_ERROR_H
#define MMLPT_COMMON_ERROR_H

#include <stdexcept>
#include <string>

namespace mmlpt {

/// Base class for all mmlpt errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A precondition, postcondition, or invariant was violated.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

/// Malformed packet bytes encountered while parsing.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A topology description is structurally invalid.
class TopologyError : public Error {
 public:
  explicit TopologyError(const std::string& what) : Error(what) {}
};

/// An operating-system level failure (socket setup, permissions, ...).
class SystemError : public Error {
 public:
  explicit SystemError(const std::string& what) : Error(what) {}
};

/// Invalid command-line or API configuration.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

}  // namespace mmlpt

#endif  // MMLPT_COMMON_ERROR_H
