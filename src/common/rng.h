// Seeded pseudo-random source used throughout the library.
//
// The paper's Fakeroute emulates load-balancer pseudo-randomness with the
// C++ standard library Mersenne Twister; we use mt19937_64 everywhere so
// that every experiment is reproducible from a printed seed.
#ifndef MMLPT_COMMON_RNG_H
#define MMLPT_COMMON_RNG_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "common/assert.h"

namespace mmlpt {

/// Deterministic random number generator with convenience draws.
///
/// Not thread-safe; give each thread (or each simulated subsystem) its own
/// instance, forked via `fork()` so streams stay independent.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// The seed this generator was constructed with.
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    MMLPT_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    MMLPT_EXPECTS(n > 0);
    return static_cast<std::size_t>(uniform(0, n - 1));
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double real() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with success probability p in [0, 1].
  [[nodiscard]] bool chance(double p) {
    MMLPT_EXPECTS(p >= 0.0 && p <= 1.0);
    return real() < p;
  }

  /// Geometric-ish heavy-tail helper: Pareto-distributed integer >= lo with
  /// shape `alpha`, truncated at hi.
  [[nodiscard]] std::uint64_t pareto_int(std::uint64_t lo, std::uint64_t hi,
                                         double alpha) {
    MMLPT_EXPECTS(lo >= 1 && lo <= hi && alpha > 0.0);
    const double u = real();
    const double x = static_cast<double>(lo) / std::pow(1.0 - u, 1.0 / alpha);
    const auto v = static_cast<std::uint64_t>(x);
    return std::min(std::max(v, lo), hi);
  }

  /// One draw from a discrete distribution given non-negative weights.
  /// Requires at least one strictly positive weight.
  [[nodiscard]] std::size_t weighted(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Uniformly pick one element. Requires non-empty.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& items) {
    MMLPT_EXPECTS(!items.empty());
    return items[index(items.size())];
  }

  /// Derive an independent child generator (stable given draw order).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  /// Splittable fork: derive the child stream for `stream_id` from the
  /// construction seed alone, without consuming parent state. The same
  /// (seed, stream_id) pair always yields the same child, no matter how
  /// many draws the parent has made or which thread asks — this is what
  /// keeps a worker pool's per-task streams deterministic regardless of
  /// scheduling order. Distinct stream ids give decorrelated streams
  /// (splitmix64 finalizer mixing).
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const {
    return Rng(split_mix(seed_ ^ (0x9E3779B97F4A7C15ULL * (stream_id + 1))));
  }

  /// The splitmix64 finalizer: a bijective avalanche over 64 bits, the
  /// standard seed-derivation mixer.
  [[nodiscard]] static constexpr std::uint64_t split_mix(
      std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  /// Access to the raw engine for std distributions.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace mmlpt

#endif  // MMLPT_COMMON_RNG_H
