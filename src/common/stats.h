// Statistics utilities: running moments, confidence intervals, empirical
// CDFs, and 1-D / 2-D histograms. These back every figure reproduction.
#ifndef MMLPT_COMMON_STATS_H
#define MMLPT_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace mmlpt {

/// Welford running mean / variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Half-width of the normal-approximation 95% confidence interval on the
  /// mean (1.96 * stderr); 0 for fewer than two samples.
  [[nodiscard]] double ci95_half_width() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical CDF over a sample of doubles.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  void add(double x);

  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }

  /// P[X <= x].
  [[nodiscard]] double at(double x) const;
  /// Smallest sample value v with P[X <= v] >= q, for q in (0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;

  /// (value, cumulative fraction) points at each distinct sample value —
  /// exactly what the paper's CDF figures plot.
  [[nodiscard]] std::vector<std::pair<double, double>> points() const;

 private:
  void sort_if_needed() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Integer-keyed frequency histogram (paper's "portion of diamonds" plots).
class Histogram {
 public:
  void add(std::int64_t key, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count(std::int64_t key) const;
  /// count(key) / total; 0 if empty.
  [[nodiscard]] double portion(std::int64_t key) const;
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& bins() const {
    return bins_;
  }

 private:
  std::map<std::int64_t, std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// 2-D integer histogram (the paper's joint length x width heatmaps).
class Histogram2D {
 public:
  void add(std::int64_t x, std::int64_t y, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t count(std::int64_t x, std::int64_t y) const;
  [[nodiscard]] double portion(std::int64_t x, std::int64_t y) const;
  [[nodiscard]] const std::map<std::pair<std::int64_t, std::int64_t>,
                               std::uint64_t>&
  cells() const {
    return cells_;
  }

 private:
  std::map<std::pair<std::int64_t, std::int64_t>, std::uint64_t> cells_;
  std::uint64_t total_ = 0;
};

/// Exact binomial coefficient as double (n up to ~1000 without overflow).
[[nodiscard]] double binomial(unsigned n, unsigned k) noexcept;

}  // namespace mmlpt

#endif  // MMLPT_COMMON_STATS_H
