#ifndef MMLPT_COMMON_THREAD_ANNOTATIONS_H
#define MMLPT_COMMON_THREAD_ANNOTATIONS_H

// Clang Thread Safety Analysis attribute macros.
//
// Under clang (with -Wthread-safety, see the MMLPT_THREAD_SAFETY CMake
// option) these expand to the static-analysis attributes that let the
// compiler prove lock discipline at build time: which fields a mutex
// guards, which functions must be called with it held, and which
// functions acquire or release it.  Under other compilers every macro
// expands to nothing, so annotated code stays portable.
//
// The annotations are declarations, not synchronization: they change
// nothing at runtime.  Pair them with the mmlpt::Mutex wrappers in
// common/mutex.h, which carry the CAPABILITY attributes the analysis
// keys off.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MMLPT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif

#ifndef MMLPT_THREAD_ANNOTATION
#define MMLPT_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// A type that acts as a lockable capability (e.g. a mutex).
#define MMLPT_CAPABILITY(x) MMLPT_THREAD_ANNOTATION(capability(x))

// A RAII type whose lifetime acquires/releases a capability.
#define MMLPT_SCOPED_CAPABILITY MMLPT_THREAD_ANNOTATION(scoped_lockable)

// Data member readable/writable only with the given capability held.
#define MMLPT_GUARDED_BY(x) MMLPT_THREAD_ANNOTATION(guarded_by(x))

// Pointer member whose *pointee* is guarded by the given capability.
#define MMLPT_PT_GUARDED_BY(x) MMLPT_THREAD_ANNOTATION(pt_guarded_by(x))

// Function that must be entered with the capability held (and exits
// with it still held).
#define MMLPT_REQUIRES(...) \
  MMLPT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Function that acquires the capability (must enter without it held).
#define MMLPT_ACQUIRE(...) \
  MMLPT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

// Function that releases the capability (must enter with it held).
#define MMLPT_RELEASE(...) \
  MMLPT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Function that acquires the capability iff it returns the given value.
#define MMLPT_TRY_ACQUIRE(...) \
  MMLPT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Function that must be entered with the capability NOT held.
#define MMLPT_EXCLUDES(...) MMLPT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Return value is a reference to a value guarded by the capability.
#define MMLPT_RETURN_CAPABILITY(x) MMLPT_THREAD_ANNOTATION(lock_returned(x))

// Opt a function out of the analysis.  Use ONLY with a comment
// explaining why the locking pattern is beyond the analysis (e.g.
// conditional or hand-off locking) and what discipline it follows.
#define MMLPT_NO_THREAD_SAFETY_ANALYSIS \
  MMLPT_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // MMLPT_COMMON_THREAD_ANNOTATIONS_H
