// Minimal JSON emission — enough to export trace results in a stable,
// machine-readable form (the modern counterpart of scamper's warts
// output). Writer only; the library never needs to parse JSON.
#ifndef MMLPT_COMMON_JSON_H
#define MMLPT_COMMON_JSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace mmlpt {

/// Streaming JSON writer with automatic comma placement and escaping.
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.value("trace");
///   w.key("hops"); w.begin_array(); ... w.end_array();
///   w.end_object();
///   std::string out = std::move(w).take();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(const std::string& name);
  void value(const std::string& text);
  void value(const char* text) { value(std::string(text)); }
  void value(bool b);
  void value(double number);
  void value(std::int64_t number);
  void value(std::uint64_t number);
  void value_null();

  [[nodiscard]] const std::string& view() const noexcept { return out_; }
  [[nodiscard]] std::string take() && { return std::move(out_); }

  /// Escape a string per RFC 8259.
  [[nodiscard]] static std::string escape(const std::string& text);

 private:
  void comma_if_needed();

  std::string out_;
  std::vector<bool> needs_comma_;  ///< per open container
};

}  // namespace mmlpt

#endif  // MMLPT_COMMON_JSON_H
