// Precondition / postcondition / invariant checks (Core Guidelines I.5/I.7).
//
// These throw mmlpt::ContractViolation rather than aborting so that library
// users (and the test suite) can observe and handle contract violations.
#ifndef MMLPT_COMMON_ASSERT_H
#define MMLPT_COMMON_ASSERT_H

#include "common/error.h"

#include <string>

namespace mmlpt {

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace mmlpt

#define MMLPT_EXPECTS(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::mmlpt::detail::contract_failure("precondition", #cond, __FILE__,     \
                                        __LINE__);                           \
  } while (false)

#define MMLPT_ENSURES(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::mmlpt::detail::contract_failure("postcondition", #cond, __FILE__,    \
                                        __LINE__);                           \
  } while (false)

#define MMLPT_ASSERT(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::mmlpt::detail::contract_failure("invariant", #cond, __FILE__,        \
                                        __LINE__);                           \
  } while (false)

#endif  // MMLPT_COMMON_ASSERT_H
