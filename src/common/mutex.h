// Annotated synchronization primitives (Clang Thread Safety Analysis).
//
// Thin wrappers over std::mutex / std::condition_variable that carry the
// CAPABILITY attributes from common/thread_annotations.h, so that under
// clang with -Wthread-safety the compiler proves at build time that every
// MMLPT_GUARDED_BY field is only touched with its mutex held and every
// MMLPT_REQUIRES function is only called under the right lock.  At runtime
// they compile down to the standard primitives with zero overhead.
//
// Usage:
//
//   class Queue {
//    public:
//     void push(int v) {
//       MutexLock lock(mutex_);
//       items_.push_back(v);
//     }
//    private:
//     mmlpt::Mutex mutex_;
//     std::vector<int> items_ MMLPT_GUARDED_BY(mutex_);
//   };
//
// Waiting:
//
//   MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(mutex_);   // predicate re-checked under lock
//
// (Spell wait loops out with an explicit `while` rather than the
// predicate overload of std::condition_variable::wait: the analysis
// checks inline code against the held capability, but cannot see that a
// predicate lambda runs with the lock held.)
#ifndef MMLPT_COMMON_MUTEX_H
#define MMLPT_COMMON_MUTEX_H

#include "common/thread_annotations.h"

#include <condition_variable>
#include <mutex>

namespace mmlpt {

/// A std::mutex that the thread-safety analysis can track.
class MMLPT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MMLPT_ACQUIRE() { mu_.lock(); }
  void unlock() MMLPT_RELEASE() { mu_.unlock(); }
  bool try_lock() MMLPT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop with std library facilities
  /// (CondVar below uses it; annotated code should not lock it directly,
  /// the analysis cannot see through native()).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock for mmlpt::Mutex — the annotated std::unique_lock analogue.
///
/// Relockable: unlock()/lock() may be called mid-scope (e.g. to drop the
/// lock around blocking I/O); the destructor releases only if owned.
class MMLPT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MMLPT_ACQUIRE(mu) : mu_(mu), owned_(true) {
    mu_.lock();
  }

  /// Adopt a mutex the caller already holds.
  MutexLock(Mutex& mu, std::adopt_lock_t) MMLPT_REQUIRES(mu)
      : mu_(mu), owned_(true) {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() MMLPT_RELEASE() {
    if (owned_) mu_.unlock();
  }

  void unlock() MMLPT_RELEASE() {
    mu_.unlock();
    owned_ = false;
  }

  void lock() MMLPT_ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }

  bool owns_lock() const { return owned_; }

  /// The underlying mutex (for CondVar interop in generic code).
  Mutex& mutex() MMLPT_RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  Mutex& mu_;
  bool owned_;
};

/// Condition variable paired with mmlpt::Mutex.
///
/// wait() takes the Mutex itself (annotated MMLPT_REQUIRES) instead of a
/// lock object, so the analysis knows the capability is held across the
/// call; internally it adopts the mutex into a std::unique_lock for the
/// duration of the wait and releases it again without unlocking.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) MMLPT_REQUIRES(mu) {
    std::unique_lock<std::mutex> ul(mu.native(), std::adopt_lock);
    cv_.wait(ul);
    ul.release();  // still locked; ownership stays with the caller
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      MMLPT_REQUIRES(mu) {
    std::unique_lock<std::mutex> ul(mu.native(), std::adopt_lock);
    std::cv_status status = cv_.wait_until(ul, deadline);
    ul.release();  // still locked; ownership stays with the caller
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& rel)
      MMLPT_REQUIRES(mu) {
    std::unique_lock<std::mutex> ul(mu.native(), std::adopt_lock);
    std::cv_status status = cv_.wait_for(ul, rel);
    ul.release();  // still locked; ownership stays with the caller
    return status;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mmlpt

#endif  // MMLPT_COMMON_MUTEX_H
