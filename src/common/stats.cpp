#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace mmlpt {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_half_width() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false) {}

void EmpiricalCdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalCdf::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::at(double x) const {
  MMLPT_EXPECTS(!samples_.empty());
  sort_if_needed();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  MMLPT_EXPECTS(!samples_.empty());
  MMLPT_EXPECTS(q > 0.0 && q <= 1.0);
  sort_if_needed();
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())) - 1.0);
  return samples_[std::min(idx, samples_.size() - 1)];
}

double EmpiricalCdf::min() const {
  MMLPT_EXPECTS(!samples_.empty());
  sort_if_needed();
  return samples_.front();
}

double EmpiricalCdf::max() const {
  MMLPT_EXPECTS(!samples_.empty());
  sort_if_needed();
  return samples_.back();
}

double EmpiricalCdf::mean() const {
  MMLPT_EXPECTS(!samples_.empty());
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> EmpiricalCdf::points() const {
  sort_if_needed();
  std::vector<std::pair<double, double>> pts;
  const auto n = static_cast<double>(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const bool last_of_value =
        (i + 1 == samples_.size()) || (samples_[i + 1] != samples_[i]);
    if (last_of_value) {
      pts.emplace_back(samples_[i], static_cast<double>(i + 1) / n);
    }
  }
  return pts;
}

void Histogram::add(std::int64_t key, std::uint64_t weight) {
  bins_[key] += weight;
  total_ += weight;
}

std::uint64_t Histogram::count(std::int64_t key) const {
  const auto it = bins_.find(key);
  return it == bins_.end() ? 0 : it->second;
}

double Histogram::portion(std::int64_t key) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(key)) / static_cast<double>(total_);
}

void Histogram2D::add(std::int64_t x, std::int64_t y, std::uint64_t weight) {
  cells_[{x, y}] += weight;
  total_ += weight;
}

std::uint64_t Histogram2D::count(std::int64_t x, std::int64_t y) const {
  const auto it = cells_.find({x, y});
  return it == cells_.end() ? 0 : it->second;
}

double Histogram2D::portion(std::int64_t x, std::int64_t y) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(x, y)) / static_cast<double>(total_);
}

double binomial(unsigned n, unsigned k) noexcept {
  if (k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (unsigned i = 0; i < k; ++i) {
    result *= static_cast<double>(n - i);
    result /= static_cast<double>(i + 1);
  }
  return result;
}

}  // namespace mmlpt
