// Fixed-width ASCII rendering for the paper's tables and CDF figure series.
#ifndef MMLPT_COMMON_TABLE_H
#define MMLPT_COMMON_TABLE_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace mmlpt {

class EmpiricalCdf;

/// Simple column-aligned ASCII table with an optional title.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void set_title(std::string title) { title_ = std::move(title); }
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `digits` decimal places.
[[nodiscard]] std::string fmt_double(double value, int digits = 3);

/// Format a fraction as a percentage string, e.g. 0.123 -> "12.3%".
[[nodiscard]] std::string fmt_percent(double fraction, int digits = 1);

/// Render CDF points as a two-column table, down-sampled to at most
/// `max_points` rows (always keeping the first and last point).
[[nodiscard]] std::string render_cdf(const std::string& title,
                                     const EmpiricalCdf& cdf,
                                     std::size_t max_points = 20);

/// Render several named CDFs side by side at the given quantile grid —
/// the textual analogue of the paper's multi-series CDF figures.
[[nodiscard]] std::string render_cdf_comparison(
    const std::string& title,
    const std::vector<std::pair<std::string, const EmpiricalCdf*>>& series,
    const std::vector<double>& quantiles);

}  // namespace mmlpt

#endif  // MMLPT_COMMON_TABLE_H
