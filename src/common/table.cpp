#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/assert.h"
#include "common/stats.h"

namespace mmlpt {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MMLPT_EXPECTS(!header_.empty());
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  MMLPT_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  if (!title_.empty()) out << title_ << '\n';

  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << "| " << cells[c]
          << std::string(widths[c] - cells[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  const auto emit_rule = [&]() {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << '+' << std::string(widths[c] + 2, '-');
    }
    out << "+\n";
  };

  emit_rule();
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string fmt_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt_percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

std::string render_cdf(const std::string& title, const EmpiricalCdf& cdf,
                       std::size_t max_points) {
  MMLPT_EXPECTS(max_points >= 2);
  AsciiTable table({"value", "CDF"});
  table.set_title(title);
  const auto pts = cdf.points();
  if (pts.empty()) return title + "\n(empty)\n";
  const std::size_t stride =
      pts.size() <= max_points ? 1 : (pts.size() + max_points - 1) / max_points;
  for (std::size_t i = 0; i < pts.size(); i += stride) {
    table.add_row({fmt_double(pts[i].first, 4), fmt_double(pts[i].second, 4)});
  }
  if ((pts.size() - 1) % stride != 0) {
    table.add_row({fmt_double(pts.back().first, 4),
                   fmt_double(pts.back().second, 4)});
  }
  return table.render();
}

std::string render_cdf_comparison(
    const std::string& title,
    const std::vector<std::pair<std::string, const EmpiricalCdf*>>& series,
    const std::vector<double>& quantiles) {
  std::vector<std::string> header{"quantile"};
  for (const auto& [name, cdf] : series) header.push_back(name);
  AsciiTable table(header);
  table.set_title(title);
  for (double q : quantiles) {
    std::vector<std::string> row{fmt_double(q, 2)};
    for (const auto& [name, cdf] : series) {
      row.push_back(cdf->empty() ? "-" : fmt_double(cdf->quantile(q), 4));
    }
    table.add_row(std::move(row));
  }
  return table.render();
}

}  // namespace mmlpt
