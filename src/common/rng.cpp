#include "common/rng.h"

#include <numeric>

namespace mmlpt {

std::size_t Rng::weighted(std::span<const double> weights) {
  MMLPT_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    MMLPT_EXPECTS(w >= 0.0);
    total += w;
  }
  MMLPT_EXPECTS(total > 0.0);
  double r = real() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: land on the last bucket
}

}  // namespace mmlpt
