#include "common/json.h"

#include <cstdio>

#include "common/assert.h"

namespace mmlpt {

void JsonWriter::comma_if_needed() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::end_object() {
  MMLPT_EXPECTS(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  needs_comma_.push_back(false);
}

void JsonWriter::end_array() {
  MMLPT_EXPECTS(!needs_comma_.empty());
  needs_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::key(const std::string& name) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  // The following value must not emit a comma.
  if (!needs_comma_.empty()) needs_comma_.back() = false;
  // ...but the element after it must.
  // (value() flips it back through comma_if_needed.)
}

void JsonWriter::value(const std::string& text) {
  comma_if_needed();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
}

void JsonWriter::value(bool b) {
  comma_if_needed();
  out_ += b ? "true" : "false";
}

void JsonWriter::value(double number) {
  comma_if_needed();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", number);
  out_ += buf;
}

void JsonWriter::value(std::int64_t number) {
  comma_if_needed();
  out_ += std::to_string(number);
}

void JsonWriter::value(std::uint64_t number) {
  comma_if_needed();
  out_ += std::to_string(number);
}

void JsonWriter::value_null() {
  comma_if_needed();
  out_ += "null";
}

std::string JsonWriter::escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace mmlpt
