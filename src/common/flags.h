// Minimal --name=value command-line flag parsing for benches and examples.
#ifndef MMLPT_COMMON_FLAGS_H
#define MMLPT_COMMON_FLAGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mmlpt {

/// Parses flags of the form `--name=value` or `--name value`; anything else
/// is kept as a positional argument. Unknown flags are allowed (benches
/// forward leftover args to google-benchmark). The bare family switches
/// `-4` / `-6` are recognised anywhere and map to `--family 4|6` (last
/// one wins), so they never get consumed as another flag's value.
class Flags {
 public:
  Flags(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name,
                                       std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mmlpt

#endif  // MMLPT_COMMON_FLAGS_H
