// Small string helpers shared across modules.
#ifndef MMLPT_COMMON_STRINGS_H
#define MMLPT_COMMON_STRINGS_H

#include <string>
#include <string_view>
#include <vector>

namespace mmlpt {

/// Split on a single-character delimiter; empty tokens are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             char delimiter);

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Join items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view separator);

}  // namespace mmlpt

#endif  // MMLPT_COMMON_STRINGS_H
