#include "common/flags.h"

#include <cstdlib>

#include "common/error.h"

namespace mmlpt {

namespace {

bool looks_like_flag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

bool is_family_switch(const std::string& arg) {
  return arg == "-4" || arg == "-6";
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // The traceroute-style family switches are the one single-dash form
    // we accept; mapping them here keeps them from being swallowed as
    // the value of a preceding bare flag ("--real -6"). Last one wins.
    if (is_family_switch(arg)) {
      values_["family"] = arg.substr(1);
      continue;
    }
    if (!looks_like_flag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !looks_like_flag(argv[i + 1]) &&
               !is_family_switch(argv[i + 1])) {
      values_[arg.substr(2)] = argv[++i];
    } else {
      values_[arg.substr(2)] = "true";  // bare boolean flag
    }
  }
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw ConfigError("flag --" + name + " expects an integer, got '" +
                      it->second + "'");
  }
}

std::uint64_t Flags::get_uint(const std::string& name,
                              std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoull(it->second);
  } catch (const std::exception&) {
    throw ConfigError("flag --" + name + " expects an unsigned integer, got '" +
                      it->second + "'");
  }
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw ConfigError("flag --" + name + " expects a number, got '" +
                      it->second + "'");
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace mmlpt
