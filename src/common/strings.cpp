#include "common/strings.h"

namespace mmlpt {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += separator;
    out += items[i];
  }
  return out;
}

}  // namespace mmlpt
