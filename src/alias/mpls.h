// MPLS Labeling (Vanaubel et al., Sec. 4.1): within a load-balanced MPLS
// tunnel, interfaces of the same router report the same (time-stable)
// label; differing stable labels at the same hop indicate different
// routers. Labels that vary over time are unusable.
#ifndef MMLPT_ALIAS_MPLS_H
#define MMLPT_ALIAS_MPLS_H

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/icmp.h"

namespace mmlpt::alias {

class MplsEvidence {
 public:
  /// Record the label stack from one reply.
  void add(std::span<const net::MplsLabelEntry> labels);

  [[nodiscard]] bool has_labels() const noexcept { return seen_any_; }

  /// The top label if it has been constant across every labelled reply;
  /// nullopt when never labelled or unstable.
  [[nodiscard]] std::optional<std::uint32_t> stable_label() const;

 private:
  bool seen_any_ = false;
  bool unstable_ = false;
  std::optional<std::uint32_t> label_;
};

/// Different stable labels: very likely different routers.
[[nodiscard]] bool mpls_incompatible(const MplsEvidence& a,
                                     const MplsEvidence& b);

/// Same stable label: very likely the same router.
[[nodiscard]] bool mpls_alias_hint(const MplsEvidence& a,
                                   const MplsEvidence& b);

}  // namespace mmlpt::alias

#endif  // MMLPT_ALIAS_MPLS_H
