#include "alias/resolver.h"

#include <algorithm>

#include "alias/mbt.h"

namespace mmlpt::alias {

void AliasResolver::add_ip_id_sample(net::Ipv4Address addr, Nanos time,
                                     std::uint16_t id,
                                     std::uint16_t probe_id) {
  evidence_[addr].series.add(time, id, probe_id);
}

void AliasResolver::add_error_reply_ttl(net::Ipv4Address addr,
                                        std::uint8_t observed_ttl) {
  evidence_[addr].signature.merge_error_ttl(observed_ttl);
}

void AliasResolver::add_echo_reply_ttl(net::Ipv4Address addr,
                                       std::uint8_t observed_ttl) {
  evidence_[addr].signature.merge_echo_ttl(observed_ttl);
}

void AliasResolver::add_mpls(net::Ipv4Address addr,
                             std::span<const net::MplsLabelEntry> labels) {
  evidence_[addr].mpls.add(labels);
}

const IpIdSeries* AliasResolver::series_of(net::Ipv4Address addr) const {
  const auto* e = find(addr);
  return e == nullptr ? nullptr : &e->series;
}

const AliasResolver::Evidence* AliasResolver::find(
    net::Ipv4Address addr) const {
  const auto it = evidence_.find(addr);
  return it == evidence_.end() ? nullptr : &it->second;
}

bool AliasResolver::statically_incompatible(const Evidence& a,
                                            const Evidence& b) const {
  return signatures_incompatible(a.signature, b.signature) ||
         mpls_incompatible(a.mpls, b.mpls);
}

std::vector<AliasSet> AliasResolver::resolve(
    std::span<const net::Ipv4Address> candidates) const {
  std::vector<AliasSet> out;

  // Addresses whose counters the MBT can reason about; everything else
  // becomes a singleton "unable" set immediately.
  std::vector<net::Ipv4Address> usable;
  for (const auto addr : candidates) {
    const auto* e = find(addr);
    const auto cls = e == nullptr
                         ? SeriesClass::kTooFew
                         : e->series.classify(config_.min_mbt_samples);
    if (cls == SeriesClass::kMonotonic) {
      usable.push_back(addr);
    } else {
      out.push_back({{addr}, Outcome::kUnable});
    }
  }

  // Greedy set refinement honouring all three evidence types: an address
  // joins the first group it is compatible with (statically and under
  // the merged-series MBT); otherwise it opens a new group.
  std::vector<std::vector<net::Ipv4Address>> groups;
  for (const auto addr : usable) {
    const auto* e = find(addr);
    bool placed = false;
    for (auto& group : groups) {
      bool ok = true;
      std::vector<const IpIdSeries*> merged;
      merged.reserve(group.size() + 1);
      for (const auto member : group) {
        const auto* me = find(member);
        if (statically_incompatible(*e, *me)) {
          ok = false;
          break;
        }
        merged.push_back(&me->series);
      }
      if (!ok) continue;
      merged.push_back(&e->series);
      if (!mbt_compatible(merged)) continue;
      group.push_back(addr);
      placed = true;
      break;
    }
    if (!placed) groups.push_back({addr});
  }

  const bool tests_possible = usable.size() >= 2;
  for (auto& group : groups) {
    AliasSet set;
    set.members = std::move(group);
    if (set.members.size() >= 2) {
      set.outcome = Outcome::kAccept;
    } else {
      // A monotonic singleton was positively separated from every other
      // usable address (reject); if it was alone to begin with there was
      // nothing to test against.
      set.outcome = tests_possible ? Outcome::kReject : Outcome::kUnable;
    }
    out.push_back(std::move(set));
  }
  return out;
}

Outcome AliasResolver::classify_set(
    std::span<const net::Ipv4Address> members) const {
  if (members.size() < 2) return Outcome::kUnable;
  std::vector<const IpIdSeries*> merged;
  merged.reserve(members.size());
  for (const auto addr : members) {
    const auto* e = find(addr);
    const auto cls = e == nullptr
                         ? SeriesClass::kTooFew
                         : e->series.classify(config_.min_mbt_samples);
    if (cls != SeriesClass::kMonotonic) return Outcome::kUnable;
    merged.push_back(&e->series);
  }
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (statically_incompatible(*find(members[i]), *find(members[j]))) {
        return Outcome::kReject;
      }
    }
  }
  return mbt_compatible(merged) ? Outcome::kAccept : Outcome::kReject;
}

}  // namespace mmlpt::alias
