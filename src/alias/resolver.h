// Set-based alias resolution following MIDAR's schema (Sec. 4.1): an
// initial candidate set (the addresses at one hop) is broken into smaller
// sets as evidence shows pairs cannot be aliases. Evidence sources:
// Network Fingerprinting signatures, MPLS labels, and the MBT over IP-ID
// time series. Sets that survive with two or more addresses are accepted
// as routers.
#ifndef MMLPT_ALIAS_RESOLVER_H
#define MMLPT_ALIAS_RESOLVER_H

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "alias/fingerprint.h"
#include "alias/ip_id_series.h"
#include "alias/mpls.h"
#include "net/ip_address.h"

namespace mmlpt::alias {

enum class Outcome : std::uint8_t {
  kAccept,  ///< members mutually consistent as one router
  kReject,  ///< some pair positively fails a test
  kUnable,  ///< insufficient / unusable evidence (e.g. constant IP-IDs)
};

struct AliasSet {
  std::vector<net::Ipv4Address> members;
  Outcome outcome = Outcome::kUnable;
};

class AliasResolver {
 public:
  struct Config {
    /// Minimum samples before a series can support MBT conclusions
    /// (MIDAR collects tens; round 0 often has only a handful).
    std::size_t min_mbt_samples = 5;
  };

  AliasResolver() = default;
  explicit AliasResolver(Config config) : config_(config) {}

  // ---- evidence feeding ----
  void add_ip_id_sample(net::Ipv4Address addr, Nanos time, std::uint16_t id,
                        std::uint16_t probe_id);
  void add_error_reply_ttl(net::Ipv4Address addr, std::uint8_t observed_ttl);
  void add_echo_reply_ttl(net::Ipv4Address addr, std::uint8_t observed_ttl);
  void add_mpls(net::Ipv4Address addr,
                std::span<const net::MplsLabelEntry> labels);

  [[nodiscard]] const IpIdSeries* series_of(net::Ipv4Address addr) const;

  /// Partition a candidate set (the addresses of one hop) into alias
  /// sets. Addresses with unusable series end up in singleton kUnable
  /// sets; surviving multi-member sets are kAccept; monotonic singletons
  /// that failed against everyone are kReject.
  [[nodiscard]] std::vector<AliasSet> resolve(
      std::span<const net::Ipv4Address> candidates) const;

  /// Classify one candidate address set as a whole — the Table 2
  /// operation: kUnable if any member's evidence is unusable, kAccept if
  /// all evidence is mutually consistent, kReject otherwise.
  [[nodiscard]] Outcome classify_set(
      std::span<const net::Ipv4Address> members) const;

 private:
  struct Evidence {
    IpIdSeries series;
    Signature signature;
    MplsEvidence mpls;
  };

  [[nodiscard]] const Evidence* find(net::Ipv4Address addr) const;
  /// Signature or MPLS proof that the two cannot be aliases.
  [[nodiscard]] bool statically_incompatible(const Evidence& a,
                                             const Evidence& b) const;

  Config config_{};
  std::map<net::Ipv4Address, Evidence> evidence_;
};

}  // namespace mmlpt::alias

#endif  // MMLPT_ALIAS_RESOLVER_H
