// The Monotonic Bounds Test (Keys et al., MIDAR): two addresses can be
// aliases only if their interleaved IP-ID samples fit a single monotonic
// counter. A single out-of-sequence identifier separates them (Sec. 4.1).
#ifndef MMLPT_ALIAS_MBT_H
#define MMLPT_ALIAS_MBT_H

#include <span>
#include <vector>

#include "alias/ip_id_series.h"

namespace mmlpt::alias {

/// True when the union of all the series' samples, ordered by time, is
/// consistent with one monotonic (mod 2^16) counter.
[[nodiscard]] bool mbt_compatible(
    std::span<const IpIdSeries* const> series);

/// Convenience pair form.
[[nodiscard]] bool mbt_compatible(const IpIdSeries& a, const IpIdSeries& b);

/// Greedy set refinement: place each series into the first group whose
/// merged samples stay monotonic; open a new group otherwise. Returns
/// groups as index lists into `series`. Order-deterministic.
[[nodiscard]] std::vector<std::vector<std::size_t>> mbt_partition(
    std::span<const IpIdSeries* const> series);

}  // namespace mmlpt::alias

#endif  // MMLPT_ALIAS_MBT_H
