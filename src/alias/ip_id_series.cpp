#include "alias/ip_id_series.h"

#include <algorithm>

#include "common/assert.h"

namespace mmlpt::alias {

void IpIdSeries::add(Nanos time, std::uint16_t id, std::uint16_t probe_id) {
  samples_.push_back({time, id, probe_id});
  // Samples normally arrive in time order (sequential probing); keep the
  // invariant cheaply if one lands out of order.
  if (samples_.size() >= 2 &&
      samples_[samples_.size() - 2].time > samples_.back().time) {
    std::sort(samples_.begin(), samples_.end(),
              [](const IpIdSample& a, const IpIdSample& b) {
                return a.time < b.time;
              });
  }
}

bool monotonic_mod16(std::span<const IpIdSample> samples,
                     std::uint16_t max_step) {
  for (std::size_t i = 1; i < samples.size(); ++i) {
    if (wrap16_delta(samples[i - 1].id, samples[i].id) > max_step) {
      return false;
    }
  }
  return true;
}

SeriesClass IpIdSeries::classify(std::size_t min_samples) const {
  if (samples_.size() < min_samples) return SeriesClass::kTooFew;

  const bool constant = std::all_of(
      samples_.begin(), samples_.end(),
      [&](const IpIdSample& s) { return s.id == samples_.front().id; });
  if (constant) return SeriesClass::kConstant;

  std::size_t echoes = 0;
  for (const auto& s : samples_) {
    if (s.id == s.probe_id) ++echoes;
  }
  if (echoes * 10 >= samples_.size() * 9) return SeriesClass::kEchoOfProbe;

  if (monotonic_mod16(samples_)) return SeriesClass::kMonotonic;
  return SeriesClass::kNonMonotonic;
}

double IpIdSeries::velocity() const {
  MMLPT_EXPECTS(samples_.size() >= 2);
  const double dt = static_cast<double>(samples_.back().time -
                                        samples_.front().time) /
                    1e9;
  if (dt <= 0.0) return 0.0;
  std::uint64_t total = 0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    total += wrap16_delta(samples_[i - 1].id, samples_[i].id);
  }
  return static_cast<double>(total) / dt;
}

}  // namespace mmlpt::alias
