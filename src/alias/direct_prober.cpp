#include "alias/direct_prober.h"

namespace mmlpt::alias {

AliasResolver DirectProber::collect(
    std::span<const net::Ipv4Address> addresses) {
  AliasResolver resolver(config_.resolver);
  for (int round = 0; round < config_.rounds; ++round) {
    for (int j = 0; j < config_.samples_per_round; ++j) {
      for (const auto addr : addresses) {
        const auto r = engine_->ping(addr);
        if (!r.answered) continue;
        resolver.add_ip_id_sample(addr, r.recv_time, r.reply_ip_id,
                                  r.probe_ip_id);
        resolver.add_echo_reply_ttl(addr, r.reply_ttl);
      }
    }
  }
  return resolver;
}

}  // namespace mmlpt::alias
