#include "alias/direct_prober.h"

#include <algorithm>

namespace mmlpt::alias {

AliasResolver DirectProber::collect(
    std::span<const net::Ipv4Address> addresses) {
  AliasResolver resolver(config_.resolver);
  // One window per interleaved sweep (capped at the configured size):
  // every address is pinged once per sweep whatever the replies say, so
  // the whole sweep is committed up front and its RTT waits overlap.
  const auto window = static_cast<std::size_t>(std::max(1, config_.window));
  for (int round = 0; round < config_.rounds; ++round) {
    for (int j = 0; j < config_.samples_per_round; ++j) {
      probe::for_each_window<net::Ipv4Address>(
          addresses, window, [&](std::span<const net::Ipv4Address> sweep) {
            const auto echoes = engine_->ping_batch(sweep);
            for (std::size_t slot = 0; slot < echoes.size(); ++slot) {
              const auto& r = echoes[slot];
              if (!r.answered) continue;
              resolver.add_ip_id_sample(sweep[slot], r.recv_time,
                                        r.reply_ip_id, r.probe_ip_id);
              resolver.add_echo_reply_ttl(sweep[slot], r.reply_ttl);
            }
          });
    }
  }
  return resolver;
}

}  // namespace mmlpt::alias
