// MIDAR-style direct probing: ICMP echo requests elicit Echo Replies whose
// IP-IDs come from the router's (router-wide) counter. Used for the
// paper's Table 2 comparison of indirect (MMLPT) vs direct (MIDAR) alias
// resolution.
#ifndef MMLPT_ALIAS_DIRECT_PROBER_H
#define MMLPT_ALIAS_DIRECT_PROBER_H

#include <span>
#include <vector>

#include "alias/resolver.h"
#include "probe/engine.h"

namespace mmlpt::alias {

class DirectProber {
 public:
  struct Config {
    int rounds = 5;
    int samples_per_round = 30;
    /// Probe window per interleaved sweep (one ping per address per
    /// sweep): the sweep's probe set is fixed, so batching collapses its
    /// RTT waits without changing probe counts; 1 = the serial prober.
    int window = 1;
    AliasResolver::Config resolver;
  };

  explicit DirectProber(probe::ProbeEngine& engine) : engine_(&engine) {}
  DirectProber(probe::ProbeEngine& engine, Config config)
      : engine_(&engine), config_(config) {}

  /// Probe `addresses` in interleaved rounds and return a resolver loaded
  /// with the collected echo evidence.
  [[nodiscard]] AliasResolver collect(
      std::span<const net::Ipv4Address> addresses);

 private:
  probe::ProbeEngine* engine_;
  Config config_{};
};

}  // namespace mmlpt::alias

#endif  // MMLPT_ALIAS_DIRECT_PROBER_H
