#include "alias/fingerprint.h"

namespace mmlpt::alias {

std::uint8_t infer_initial_ttl(std::uint8_t observed_ttl) {
  if (observed_ttl <= 32) return 32;
  if (observed_ttl <= 64) return 64;
  if (observed_ttl <= 128) return 128;
  return 255;
}

void Signature::merge_error_ttl(std::uint8_t observed_ttl) {
  error_initial = infer_initial_ttl(observed_ttl);
}

void Signature::merge_echo_ttl(std::uint8_t observed_ttl) {
  echo_initial = infer_initial_ttl(observed_ttl);
}

bool signatures_incompatible(const Signature& a, const Signature& b) {
  if (a.error_initial && b.error_initial &&
      *a.error_initial != *b.error_initial) {
    return true;
  }
  if (a.echo_initial && b.echo_initial &&
      *a.echo_initial != *b.echo_initial) {
    return true;
  }
  return false;
}

}  // namespace mmlpt::alias
