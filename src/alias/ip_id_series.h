// IP-ID time series per address, the raw material of MIDAR-style alias
// resolution: classification (constant / echo-of-probe / non-monotonic /
// monotonic) and 16-bit wraparound unwrapping.
#ifndef MMLPT_ALIAS_IP_ID_SERIES_H
#define MMLPT_ALIAS_IP_ID_SERIES_H

#include <cstdint>
#include <span>
#include <vector>

#include "probe/network.h"

namespace mmlpt::alias {

using probe::Nanos;

struct IpIdSample {
  Nanos time = 0;
  std::uint16_t id = 0;
  std::uint16_t probe_id = 0;  ///< IP-ID of the probe that elicited it
};

enum class SeriesClass : std::uint8_t {
  kTooFew,        ///< not enough samples to say anything
  kConstant,      ///< same value every time (mostly zero in the wild)
  kEchoOfProbe,   ///< copies the probe's IP-ID
  kNonMonotonic,  ///< jumps around: unusable counter
  kMonotonic,     ///< well-behaved counter: MBT applies
};

class IpIdSeries {
 public:
  void add(Nanos time, std::uint16_t id, std::uint16_t probe_id);

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] std::span<const IpIdSample> samples() const noexcept {
    return samples_;
  }

  [[nodiscard]] SeriesClass classify(std::size_t min_samples = 3) const;

  /// Estimated counter velocity in IDs/second over the unwrapped series;
  /// only meaningful for kMonotonic.
  [[nodiscard]] double velocity() const;

 private:
  std::vector<IpIdSample> samples_;  ///< kept in time order
};

/// Forward distance from `a` to `b` on the 16-bit circle.
[[nodiscard]] constexpr std::uint16_t wrap16_delta(std::uint16_t a,
                                                   std::uint16_t b) noexcept {
  return static_cast<std::uint16_t>(b - a);
}

/// True when the time-ordered samples are consistent with a single
/// monotonic 16-bit counter: every consecutive forward delta is below
/// `max_step` (half the circle by default rejects backwards jumps).
[[nodiscard]] bool monotonic_mod16(std::span<const IpIdSample> samples,
                                   std::uint16_t max_step = 0x7FFF);

}  // namespace mmlpt::alias

#endif  // MMLPT_ALIAS_IP_ID_SERIES_H
