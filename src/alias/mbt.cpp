#include "alias/mbt.h"

#include <algorithm>

namespace mmlpt::alias {

namespace {

std::vector<IpIdSample> merged_samples(
    std::span<const IpIdSeries* const> series) {
  std::vector<IpIdSample> all;
  std::size_t total = 0;
  for (const auto* s : series) total += s->size();
  all.reserve(total);
  for (const auto* s : series) {
    const auto samples = s->samples();
    all.insert(all.end(), samples.begin(), samples.end());
  }
  std::sort(all.begin(), all.end(),
            [](const IpIdSample& a, const IpIdSample& b) {
              return a.time < b.time;
            });
  return all;
}

}  // namespace

bool mbt_compatible(std::span<const IpIdSeries* const> series) {
  if (!monotonic_mod16(merged_samples(series))) return false;
  // Velocity consistency (the MIDAR lineage's velocity modelling): two
  // counters advancing at very different speeds can interleave
  // monotonically by phase luck over a few samples, but their implied
  // velocities betray them. Aliases sample one counter, so estimates
  // agree.
  double lo = 0.0;
  double hi = 0.0;
  bool first = true;
  for (const auto* s : series) {
    if (s->size() < 3) continue;
    const double v = s->velocity();
    if (v <= 0.0) continue;
    if (first) {
      lo = hi = v;
      first = false;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  constexpr double kMaxVelocityRatio = 4.0;
  return first || hi <= lo * kMaxVelocityRatio;
}

bool mbt_compatible(const IpIdSeries& a, const IpIdSeries& b) {
  const IpIdSeries* pair[] = {&a, &b};
  return mbt_compatible(pair);
}

std::vector<std::vector<std::size_t>> mbt_partition(
    std::span<const IpIdSeries* const> series) {
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < series.size(); ++i) {
    bool placed = false;
    for (auto& group : groups) {
      std::vector<const IpIdSeries*> candidate;
      candidate.reserve(group.size() + 1);
      for (const std::size_t g : group) candidate.push_back(series[g]);
      candidate.push_back(series[i]);
      if (mbt_compatible(candidate)) {
        group.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({i});
  }
  return groups;
}

}  // namespace mmlpt::alias
