#include "alias/mpls.h"

namespace mmlpt::alias {

void MplsEvidence::add(std::span<const net::MplsLabelEntry> labels) {
  if (labels.empty()) return;
  seen_any_ = true;
  const std::uint32_t top = labels.front().label;
  if (!label_) {
    label_ = top;
  } else if (*label_ != top) {
    unstable_ = true;
  }
}

std::optional<std::uint32_t> MplsEvidence::stable_label() const {
  if (!seen_any_ || unstable_) return std::nullopt;
  return label_;
}

bool mpls_incompatible(const MplsEvidence& a, const MplsEvidence& b) {
  const auto la = a.stable_label();
  const auto lb = b.stable_label();
  return la && lb && *la != *lb;
}

bool mpls_alias_hint(const MplsEvidence& a, const MplsEvidence& b) {
  const auto la = a.stable_label();
  const auto lb = b.stable_label();
  return la && lb && *la == *lb;
}

}  // namespace mmlpt::alias
