// Network Fingerprinting (Vanaubel et al.): infer the initial TTL a
// router used for its replies; different inferred initial TTLs mean
// different router OS families, hence different routers.
#ifndef MMLPT_ALIAS_FINGERPRINT_H
#define MMLPT_ALIAS_FINGERPRINT_H

#include <cstdint>
#include <optional>

namespace mmlpt::alias {

/// Routers initialise reply TTLs from a small set of defaults; the value
/// observed at the vantage point is initial minus path length, so the
/// smallest default >= observed is the inferred initial.
[[nodiscard]] std::uint8_t infer_initial_ttl(std::uint8_t observed_ttl);

/// The (error-reply, echo-reply) initial-TTL pair; components are filled
/// in as evidence arrives.
struct Signature {
  std::optional<std::uint8_t> error_initial;
  std::optional<std::uint8_t> echo_initial;

  void merge_error_ttl(std::uint8_t observed_ttl);
  void merge_echo_ttl(std::uint8_t observed_ttl);
};

/// True when the signatures differ on a component both sides know —
/// almost certainly different routers.
[[nodiscard]] bool signatures_incompatible(const Signature& a,
                                           const Signature& b);

}  // namespace mmlpt::alias

#endif  // MMLPT_ALIAS_FINGERPRINT_H
