#include "probe/simulated_network.h"

namespace mmlpt::probe {

std::optional<Received> SimulatedNetwork::transact(
    std::span<const std::uint8_t> datagram, Nanos now) {
  auto reply = simulator_->handle(datagram, now);
  if (!reply) return std::nullopt;
  return Received{std::move(reply->datagram), reply->rtt};
}

void SimulatedNetwork::submit(std::span<const Datagram> window, Ticket ticket,
                              const SubmitOptions& /*options*/) {
  ready_.reserve(ready_.size() + window.size());
  for (std::size_t slot = 0; slot < window.size(); ++slot) {
    Completion completion;
    completion.ticket = ticket;
    completion.slot = slot;
    auto reply = simulator_->handle(window[slot].bytes, window[slot].at);
    if (reply) {
      completion.reply = Received{std::move(reply->datagram), reply->rtt};
    }
    ready_.push_back(std::move(completion));
  }
}

std::vector<Completion> SimulatedNetwork::poll_completions() {
  auto completions = std::move(ready_);
  ready_.clear();
  return completions;
}

void SimulatedNetwork::cancel(Ticket /*ticket*/) {
  // Every slot resolves at submit(); there is never anything to cancel.
}

std::size_t SimulatedNetwork::pending() const { return ready_.size(); }

}  // namespace mmlpt::probe
