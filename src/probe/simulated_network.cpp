#include "probe/simulated_network.h"

namespace mmlpt::probe {

std::optional<Received> SimulatedNetwork::transact(
    std::span<const std::uint8_t> datagram, Nanos now) {
  auto reply = simulator_->handle(datagram, now);
  if (!reply) return std::nullopt;
  return Received{std::move(reply->datagram), reply->rtt};
}

}  // namespace mmlpt::probe
