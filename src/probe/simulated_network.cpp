#include "probe/simulated_network.h"

namespace mmlpt::probe {

std::optional<Received> SimulatedNetwork::transact(
    std::span<const std::uint8_t> datagram, Nanos now) {
  auto reply = simulator_->handle(datagram, now);
  if (!reply) return std::nullopt;
  return Received{std::move(reply->datagram), reply->rtt};
}

std::vector<std::optional<Received>> SimulatedNetwork::transact_batch(
    std::span<const Datagram> batch) {
  std::vector<std::optional<Received>> replies;
  replies.reserve(batch.size());
  for (const auto& datagram : batch) {
    auto reply = simulator_->handle(datagram.bytes, datagram.at);
    if (reply) {
      replies.push_back(Received{std::move(reply->datagram), reply->rtt});
    } else {
      replies.emplace_back(std::nullopt);
    }
  }
  return replies;
}

}  // namespace mmlpt::probe
