// The probing engine: crafts Paris-style UDP probes, ICMP(v6) echo probes
// for direct probing, drives the Network transport, parses replies, and
// keeps the packet accounting every evaluation figure relies on.
//
// The engine is address-family generic. On IPv4 the Paris flow identifier
// lives in the (source port, destination port) pair; on IPv6 it lives in
// the 20-bit flow label while the ports stay constant — across flows
// nothing but the label varies on the wire, exactly the field RFC 6438
// tells v6 load balancers to hash.
#ifndef MMLPT_PROBE_ENGINE_H
#define MMLPT_PROBE_ENGINE_H

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/icmp.h"
#include "net/ip_address.h"
#include "obs/metrics.h"
#include "probe/transport_queue.h"

namespace mmlpt::probe {

/// Abstract flow identifier. The engine maps it onto the (source port,
/// destination port) pair: the source port cycles through the high port
/// range and the destination port steps up once per cycle, so billions of
/// distinct flows are addressable even though each field is 16 bits.
using FlowId = std::uint32_t;

/// Result of one traceroute-style probe.
struct TraceProbeResult {
  bool answered = false;
  net::IpAddress responder;          ///< unspecified when unanswered
  bool from_destination = false;     ///< ICMP(v6) Port Unreachable
  std::uint16_t reply_ip_id = 0;     ///< outer header of the reply; 0 on v6
  std::uint8_t reply_ttl = 0;
  std::uint16_t probe_ip_id = 0;     ///< what we sent (echo-ID detection)
  std::vector<net::MplsLabelEntry> mpls_labels;
  Nanos send_time = 0;
  Nanos recv_time = 0;
  /// Datagrams this probe cost (1 + retries actually used). FlowCache's
  /// serial-equivalent packet accounting charges a prefetched probe this
  /// amount when the algorithm consumes it.
  int attempts = 0;
};

/// Result of one direct (echo) probe.
struct EchoProbeResult {
  bool answered = false;
  net::IpAddress responder;
  std::uint16_t reply_ip_id = 0;
  std::uint8_t reply_ttl = 0;
  std::uint16_t probe_ip_id = 0;
  Nanos send_time = 0;
  Nanos recv_time = 0;
  int attempts = 0;  ///< datagrams this probe cost (1 + retries used)
};

/// Invoke `fn` on consecutive window-sized subspans of `items`, in
/// order — the one chunking discipline every windowed sweep shares.
template <typename T, typename Fn>
void for_each_window(std::span<const T> items, std::size_t window, Fn&& fn) {
  for (std::size_t i = 0; i < items.size(); i += window) {
    fn(items.subspan(i, std::min(window, items.size() - i)));
  }
}

class ProbeEngine {
 public:
  struct Config {
    net::IpAddress source;
    net::IpAddress destination;
    std::uint16_t base_src_port = 33434;  ///< start of the source-port cycle
    std::uint16_t base_dst_port = 33434;  ///< classic traceroute port
    Nanos send_interval = 2'000'000;  ///< 2 ms of virtual time per probe
    int max_retries = 2;              ///< retransmissions when unanswered
    /// Optional registry for retry counts and the RTT histogram; null =
    /// uninstrumented (the engine's own packet accounting is unaffected).
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// The engine drives the transport through the submit/completion
  /// queue and owns its tickets: do not interleave other submissions on
  /// the same queue object (multiplexing is FleetTransportHub's job).
  ProbeEngine(TransportQueue& network, Config config);

  /// The trace's address family (source and destination always agree).
  [[nodiscard]] net::Family family() const noexcept {
    return config_.destination.family();
  }

  /// The wire-level (src_port, dst_port) encoding a flow identifier
  /// (IPv4; on IPv6 both ports are constant at their base values).
  [[nodiscard]] std::pair<std::uint16_t, std::uint16_t> flow_ports(
      FlowId flow) const noexcept;

  /// The wire-level IPv6 flow label encoding a flow identifier. Flow
  /// identifiers must fit the 20-bit label; every tracer allocates them
  /// sequentially and the node-control cap keeps them far below 2^20.
  [[nodiscard]] std::uint32_t flow_label(FlowId flow) const;

  /// Send a UDP probe with `flow` and `ttl`; retries transparently.
  [[nodiscard]] TraceProbeResult probe(FlowId flow, std::uint8_t ttl);

  /// One element of a probe window for probe_batch().
  struct ProbeRequest {
    FlowId flow = 0;
    std::uint8_t ttl = 1;
  };

  /// Send a window of UDP probes as one TransportQueue submission and
  /// drain its completions; slot i of the result answers requests[i].
  /// Retries run in rounds: after the first window, every unanswered
  /// probe is resent as a (smaller) window, up to max_retries times. The
  /// virtual clock advances send_interval per datagram while the window
  /// goes out, then jumps to the latest reply — the windowed counterpart
  /// of probe()'s send-then-wait accounting.
  [[nodiscard]] std::vector<TraceProbeResult> probe_batch(
      std::span<const ProbeRequest> requests);

  /// Send an ICMP(v6) echo request to `target` (direct probing).
  [[nodiscard]] EchoProbeResult ping(net::IpAddress target);

  /// Send a window of ICMP echo requests as one TransportQueue
  /// submission; slot i answers targets[i]. Retries run in rounds exactly like
  /// probe_batch, and a reply that is not an Echo Reply counts as
  /// unanswered (matching ping()'s per-attempt filter). A one-element
  /// window is equivalent to ping().
  [[nodiscard]] std::vector<EchoProbeResult> ping_batch(
      std::span<const net::IpAddress> targets);

  /// Total datagrams sent, including retries and echo probes.
  [[nodiscard]] std::uint64_t packets_sent() const noexcept {
    return packets_sent_;
  }
  [[nodiscard]] std::uint64_t trace_probes_sent() const noexcept {
    return trace_probes_sent_;
  }
  [[nodiscard]] std::uint64_t echo_probes_sent() const noexcept {
    return echo_probes_sent_;
  }

  [[nodiscard]] Nanos now() const noexcept { return now_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  /// One submission, fully drained: the blocking round trip every retry
  /// round uses. Slot i of the result answers window[i].
  [[nodiscard]] std::vector<std::optional<Received>> transact_window(
      std::span<const Datagram> window);

  TransportQueue* network_;
  Config config_;
  /// Null when Config::metrics is null — instrumentation is then one
  /// pointer test per site.
  obs::Counter* retries_ = nullptr;
  obs::Histogram* rtt_seconds_ = nullptr;
  Ticket next_ticket_ = 1;
  Nanos now_ = kStartOfTime;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t trace_probes_sent_ = 0;
  std::uint64_t echo_probes_sent_ = 0;
  std::uint16_t next_probe_ip_id_ = 1;
  std::uint16_t next_echo_sequence_ = 1;

  static constexpr Nanos kStartOfTime = 1'000'000'000ULL;
};

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_ENGINE_H
