#include "probe/uring.h"

#if MMLPT_HAS_IO_URING

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>

#include "common/assert.h"
#include "common/error.h"

namespace mmlpt::probe::uring {

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* params) noexcept {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) noexcept {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

[[nodiscard]] std::atomic_ref<unsigned> shared(unsigned* p) noexcept {
  return std::atomic_ref<unsigned>(*p);
}

}  // namespace

bool kernel_supported() noexcept {
  static const bool supported = [] {
    io_uring_params params{};
    const int fd = sys_io_uring_setup(4, &params);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return supported;
}

Ring::Ring(unsigned entries) {
  io_uring_params params{};
  fd_ = sys_io_uring_setup(entries, &params);
  if (fd_ < 0) {
    throw SystemError(std::string("io_uring_setup: ") + std::strerror(errno));
  }

  sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ = params.cq_off.cqes + params.cq_entries * sizeof(Cqe);
  const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
  }

  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    const int err = errno;
    ::close(fd_);
    throw SystemError(std::string("io_uring sq mmap: ") + std::strerror(err));
  }
  if (single_mmap) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, fd_, IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      const int err = errno;
      ::munmap(sq_ring_, sq_ring_bytes_);
      ::close(fd_);
      throw SystemError(std::string("io_uring cq mmap: ") + std::strerror(err));
    }
  }

  sqes_bytes_ = params.sq_entries * sizeof(Sqe);
  sqes_ = static_cast<Sqe*>(::mmap(nullptr, sqes_bytes_,
                                   PROT_READ | PROT_WRITE,
                                   MAP_SHARED | MAP_POPULATE, fd_,
                                   IORING_OFF_SQES));
  if (sqes_ == MAP_FAILED) {
    const int err = errno;
    if (cq_ring_ != sq_ring_) ::munmap(cq_ring_, cq_ring_bytes_);
    ::munmap(sq_ring_, sq_ring_bytes_);
    ::close(fd_);
    throw SystemError(std::string("io_uring sqes mmap: ") + std::strerror(err));
  }

  auto* sq_base = static_cast<std::uint8_t*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
  sq_entries_ = params.sq_entries;
  sq_array_ = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);

  auto* cq_base = static_cast<std::uint8_t*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
  cqes_ = reinterpret_cast<Cqe*>(cq_base + params.cq_off.cqes);

  // Identity-map the SQ index array once: slot i of the array always
  // names SQE i, so publishing an SQE is just a tail store.
  for (unsigned i = 0; i < sq_entries_; ++i) sq_array_[i] = i;
  // relaxed: setup-time read of our own tail — the kernel never writes
  // it, so there is nothing to synchronize with yet.
  sqe_tail_ = shared(sq_tail_).load(std::memory_order_relaxed);
}

Ring::~Ring() {
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
  if (fd_ >= 0) ::close(fd_);
}

Sqe* Ring::try_get_sqe() noexcept {
  const unsigned head = shared(sq_head_).load(std::memory_order_acquire);
  if (sqe_tail_ - head >= sq_entries_) return nullptr;  // SQ full
  Sqe* sqe = &sqes_[sqe_tail_ & sq_mask_];
  ++sqe_tail_;
  std::memset(sqe, 0, sizeof(*sqe));
  return sqe;
}

Sqe* Ring::get_sqe() {
  if (Sqe* sqe = try_get_sqe()) return sqe;
  flush();
  Sqe* sqe = try_get_sqe();
  if (sqe == nullptr) {
    throw SystemError("io_uring submission queue stuck full after flush");
  }
  return sqe;
}

unsigned Ring::unflushed() const noexcept {
  // relaxed: sq_tail_ is only ever written by this thread (flush), so
  // the load needs atomicity, not ordering.
  return sqe_tail_ - shared(sq_tail_).load(std::memory_order_relaxed);
}

unsigned Ring::flush(unsigned wait_for) {
  shared(sq_tail_).store(sqe_tail_, std::memory_order_release);
  unsigned consumed = 0;
  bool waited = false;
  for (;;) {
    const unsigned to_submit =
        sqe_tail_ - shared(sq_head_).load(std::memory_order_acquire);
    const bool want_wait = wait_for > 0 && !waited;
    if (to_submit == 0 && !want_wait) return consumed;
    const int rc = sys_io_uring_enter(fd_, to_submit,
                                      want_wait ? wait_for : 0u,
                                      want_wait ? IORING_ENTER_GETEVENTS : 0u);
    if (rc < 0) {
      if (errno == EINTR) continue;  // absolute deadlines live in-kernel
      // CQ overflow backpressure: hand control back so the caller reaps
      // completions before retrying the remaining SQEs.
      if (errno == EBUSY) return consumed;
      throw SystemError(std::string("io_uring_enter: ") +
                        std::strerror(errno));
    }
    consumed += static_cast<unsigned>(rc);
    if (want_wait) waited = true;
  }
}

std::size_t Ring::reap(std::vector<Cqe>& out) {
  // relaxed: cq head is only advanced by us; the acquire on the tail
  // below is what makes the kernel's CQE writes visible.
  unsigned head = shared(cq_head_).load(std::memory_order_relaxed);
  const unsigned tail = shared(cq_tail_).load(std::memory_order_acquire);
  std::size_t count = 0;
  while (head != tail) {
    out.push_back(cqes_[head & cq_mask_]);
    ++head;
    ++count;
  }
  if (count > 0) shared(cq_head_).store(head, std::memory_order_release);
  return count;
}

}  // namespace mmlpt::probe::uring

#else  // !MMLPT_HAS_IO_URING

namespace mmlpt::probe::uring {

bool kernel_supported() noexcept { return false; }

}  // namespace mmlpt::probe::uring

#endif  // MMLPT_HAS_IO_URING
