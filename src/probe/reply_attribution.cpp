#include "probe/reply_attribution.h"

#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace mmlpt::probe {

bool reply_matches_probe(const net::ParsedProbe& sent,
                         const net::ParsedReply& got) {
  if (sent.family != got.family) return false;
  if (got.is_echo_reply()) {
    if (!sent.is_echo_request()) return false;
    if (sent.family == net::Family::kIpv4) {
      return got.icmp.identifier == sent.icmp.identifier &&
             got.icmp.sequence == sent.icmp.sequence;
    }
    return got.icmp6.identifier == sent.icmp6.identifier &&
           got.icmp6.sequence == sent.icmp6.sequence;
  }
  if (sent.family == net::Family::kIpv4) {
    if (!got.quoted_ip) return false;
    if (got.quoted_ip->dst != sent.ip.dst) return false;
    if (sent.ip.protocol == net::IpProto::kUdp) {
      return got.quoted_udp && got.quoted_udp->src_port == sent.udp.src_port &&
             got.quoted_udp->dst_port == sent.udp.dst_port;
    }
    return got.quoted_icmp &&
           got.quoted_icmp->identifier == sent.icmp.identifier;
  }
  if (!got.quoted_ip6) return false;
  if (got.quoted_ip6->dst != sent.ip6.dst) return false;
  if (sent.ip6.next_header == net::IpProto::kUdp) {
    // The flow label is the Paris identifier on v6; the (constant) ports
    // guard against unrelated traffic towards the same destination.
    return got.quoted_ip6->flow_label == sent.ip6.flow_label &&
           got.quoted_udp && got.quoted_udp->src_port == sent.udp.src_port &&
           got.quoted_udp->dst_port == sent.udp.dst_port;
  }
  return got.quoted_icmp6 &&
         got.quoted_icmp6->identifier == sent.icmp6.identifier;
}

bool reply_quotes_probe_id(const net::ParsedProbe& sent,
                           const net::ParsedReply& got) {
  if (got.is_echo_reply()) return true;  // identifier/sequence are exact
  if (sent.family == net::Family::kIpv4) {
    if (!got.quoted_ip) return false;
    return got.quoted_ip->identification == sent.ip.identification;
  }
  // v6 has no identification; the engine encodes the probe TTL in the
  // UDP length, which the quoted UDP header echoes back.
  if (!got.quoted_udp) return false;
  return got.quoted_udp->length == sent.udp.length;
}

std::vector<std::uint8_t> reconstruct_ipv6_reply(
    std::span<std::uint8_t> payload, const net::IpAddress& peer,
    int hop_limit, const net::IpAddress& reply_dst) {
  if (payload.size() >= 4) {
    payload[2] = 0;  // zero the ICMPv6 checksum (see header comment)
    payload[3] = 0;
  }
  net::Ipv6Header outer;
  outer.src = peer;
  outer.dst = reply_dst;
  outer.next_header = net::IpProto::kIcmpv6;
  outer.hop_limit = static_cast<std::uint8_t>(hop_limit);
  return outer.serialize({payload.data(), payload.size()});
}

void ReplyAttributor::add_pending(PendingSlot slot) {
  ++pending_per_ticket_[slot.ticket];
  pending_.push_back(std::move(slot));
}

void ReplyAttributor::resolve_unsent(Ticket ticket, std::size_t slot,
                                     net::ParsedProbe probe) {
  Completion completion;
  completion.ticket = ticket;
  completion.slot = slot;
  ready_.push_back(std::move(completion));
  remember_resolved(std::move(probe));
}

void ReplyAttributor::resolve_unanswered(Ticket ticket, std::size_t slot) {
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].ticket == ticket && pending_[i].slot == slot) {
      resolve_at(i, /*canceled=*/false);
      return;
    }
  }
}

void ReplyAttributor::resolve_at(std::size_t index, bool canceled) {
  const Ticket ticket = pending_[index].ticket;
  Completion completion;
  completion.ticket = ticket;
  completion.slot = pending_[index].slot;
  completion.canceled = canceled;
  ready_.push_back(std::move(completion));
  // An expired slot's reply may still arrive; remember the probe so the
  // late reply is dropped, not loose-matched onto another slot.
  remember_resolved(std::move(pending_[index].probe));
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(index));
  drop_pending_count(ticket);
}

void ReplyAttributor::expire(Clock::time_point now) {
  for (std::size_t i = 0; i < pending_.size();) {
    if (pending_[i].deadline <= now) {
      resolve_at(i, /*canceled=*/false);
      if (expiry_counter_ != nullptr) expiry_counter_->add();
    } else {
      ++i;
    }
  }
}

void ReplyAttributor::expire_ticket(Ticket ticket) {
  for (std::size_t i = 0; i < pending_.size();) {
    if (pending_[i].ticket == ticket) {
      resolve_at(i, /*canceled=*/false);
      if (expiry_counter_ != nullptr) expiry_counter_->add();
    } else {
      ++i;
    }
  }
}

void ReplyAttributor::cancel(Ticket ticket) {
  for (std::size_t i = 0; i < pending_.size();) {
    if (pending_[i].ticket == ticket) {
      resolve_at(i, /*canceled=*/true);
    } else {
      ++i;
    }
  }
}

void ReplyAttributor::attribute(const net::ParsedReply& got,
                                std::vector<std::uint8_t> reply,
                                Clock::time_point now) {
  // Two-tier slot attribution: flow matching alone cannot tell apart two
  // outstanding probes of the same flow at different TTLs, so prefer the
  // slot whose per-probe discriminator the reply quotes (IPv4
  // identification / IPv6 UDP length); fall back to the first flow match
  // for routers that mangle the quoted header. A quoted discriminator
  // whose matching slots are ALL already answered is a duplicated reply
  // — drop it rather than loose-matching it onto a different pending
  // slot of the same flow. (The v4 IP-ID is unique per probe; the v6
  // discriminator is per (flow, ttl), so duplicate requests in one
  // window share it — keep scanning for a pending slot before declaring
  // a duplicate.) The scan covers every in-flight ticket: one receive
  // loop serves all tracers multiplexed onto this socket pair.
  std::ptrdiff_t exact = -1;
  std::ptrdiff_t loose = -1;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (!reply_matches_probe(pending_[i].probe, got)) continue;
    if (reply_quotes_probe_id(pending_[i].probe, got)) {
      exact = static_cast<std::ptrdiff_t>(i);
      break;
    }
    if (loose < 0) loose = static_cast<std::ptrdiff_t>(i);
  }
  if (exact < 0) {
    for (const auto& resolved : resolved_) {
      if (reply_matches_probe(resolved.probe, got) &&
          reply_quotes_probe_id(resolved.probe, got)) {
        return;  // late or duplicated reply to a resolved probe
      }
    }
  }
  const std::ptrdiff_t hit = exact >= 0 ? exact : loose;
  if (hit < 0) return;  // someone else's ICMP

  auto& slot = pending_[static_cast<std::size_t>(hit)];
  const auto rtt =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - slot.sent_at);
  Completion completion;
  completion.ticket = slot.ticket;
  completion.slot = slot.slot;
  completion.reply =
      Received{std::move(reply), static_cast<Nanos>(rtt.count())};
  const Ticket hit_ticket = completion.ticket;
  ready_.push_back(std::move(completion));
  remember_resolved(std::move(slot.probe));
  pending_.erase(pending_.begin() + hit);
  drop_pending_count(hit_ticket);
}

std::vector<Completion> ReplyAttributor::take_ready() {
  auto completions = std::move(ready_);
  ready_.clear();
  return completions;
}

void ReplyAttributor::push_ready(Completion completion) {
  ready_.push_back(std::move(completion));
}

std::optional<ReplyAttributor::Clock::time_point>
ReplyAttributor::earliest_deadline() const {
  if (pending_.empty()) return std::nullopt;
  auto earliest = pending_.front().deadline;
  for (const auto& slot : pending_) {
    earliest = std::min(earliest, slot.deadline);
  }
  return earliest;
}

std::size_t ReplyAttributor::pending_for(Ticket ticket) const noexcept {
  const auto it = pending_per_ticket_.find(ticket);
  return it == pending_per_ticket_.end() ? 0 : it->second;
}

void ReplyAttributor::drop_pending_count(Ticket ticket) {
  const auto it = pending_per_ticket_.find(ticket);
  if (it == pending_per_ticket_.end()) return;
  if (--it->second == 0) pending_per_ticket_.erase(it);
}

void ReplyAttributor::remember_resolved(net::ParsedProbe probe) {
  resolved_.push_back(ResolvedSlot{std::move(probe)});
  while (resolved_.size() > kResolvedMemory) resolved_.pop_front();
}

}  // namespace mmlpt::probe
