#include "probe/engine.h"

#include <algorithm>

#include "common/assert.h"
#include "net/packet.h"
#include "obs/trace_events.h"

namespace mmlpt::probe {

ProbeEngine::ProbeEngine(TransportQueue& network, Config config)
    : network_(&network), config_(config) {
  MMLPT_EXPECTS(!config_.destination.is_unspecified());
  MMLPT_EXPECTS(config_.source.family() == config_.destination.family());
  if (config_.metrics != nullptr) {
    retries_ = config_.metrics->counter(
        "mmlpt_probe_retries_total",
        "Probes resent after an unanswered attempt");
    rtt_seconds_ = config_.metrics->histogram(
        "mmlpt_probe_rtt_seconds", "Round-trip time of answered probes",
        {0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
         1.0, 2.5});
  }
}

std::vector<std::optional<Received>> ProbeEngine::transact_window(
    std::span<const Datagram> window) {
  obs::Span span("window", "probe");
  span.arg("probes", static_cast<double>(window.size()));
  const Ticket ticket = next_ticket_++;
  network_->submit(window, ticket);
  std::vector<std::optional<Received>> replies(window.size());
  std::size_t outstanding = window.size();
  while (outstanding > 0) {
    auto completions = network_->poll_completions();
    MMLPT_ASSERT(!completions.empty());
    for (auto& completion : completions) {
      // The engine owns this queue's tickets, so every completion is ours.
      MMLPT_ASSERT(completion.ticket == ticket);
      MMLPT_ASSERT(completion.slot < replies.size());
      replies[completion.slot] = std::move(completion.reply);
      --outstanding;
    }
  }
  return replies;
}

std::pair<std::uint16_t, std::uint16_t> ProbeEngine::flow_ports(
    FlowId flow) const noexcept {
  if (family() == net::Family::kIpv6) {
    // IPv6 Paris: the flow identifier lives in the flow label; ports are
    // constant so across flows only the label varies on the wire.
    return {config_.base_src_port, config_.base_dst_port};
  }
  // Source port walks the range [base, 65536); once exhausted the
  // destination port steps, opening a fresh cycle of distinct 5-tuples.
  const std::uint32_t cycle = 65536u - config_.base_src_port;
  const auto src = static_cast<std::uint16_t>(config_.base_src_port +
                                              flow % cycle);
  const auto dst =
      static_cast<std::uint16_t>(config_.base_dst_port + flow / cycle);
  return {src, dst};
}

std::uint32_t ProbeEngine::flow_label(FlowId flow) const {
  MMLPT_EXPECTS(flow <= net::kMaxFlowLabel);
  return flow;
}

TraceProbeResult ProbeEngine::probe(FlowId flow, std::uint8_t ttl) {
  // A one-element window: probe_batch's retry rounds, ip-id allocation
  // and clock accounting reduce exactly to the serial send-then-wait
  // loop, so the serial path cannot drift from the windowed one.
  const ProbeRequest request{flow, ttl};
  auto results = probe_batch({&request, 1});
  return std::move(results.front());
}

std::vector<TraceProbeResult> ProbeEngine::probe_batch(
    std::span<const ProbeRequest> requests) {
  std::vector<TraceProbeResult> results(requests.size());
  std::vector<std::size_t> pending(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    MMLPT_EXPECTS(requests[i].ttl >= 1);
    pending[i] = i;
  }

  for (int attempt = 0; attempt <= config_.max_retries && !pending.empty();
       ++attempt) {
    if (attempt > 0 && retries_ != nullptr) retries_->add(pending.size());
    std::vector<Datagram> window;
    window.reserve(pending.size());
    for (const std::size_t i : pending) {
      net::ProbeSpec spec;
      spec.src = config_.source;
      spec.dst = config_.destination;
      const auto [src_port, dst_port] = flow_ports(requests[i].flow);
      spec.src_port = src_port;
      spec.dst_port = dst_port;
      spec.ttl = requests[i].ttl;
      spec.ip_id = next_probe_ip_id_++;
      if (family() == net::Family::kIpv6) {
        spec.flow_label = flow_label(requests[i].flow);
        // v6 has no identification field; encode the TTL in the payload
        // length instead (classic traceroute style) so a raw-socket
        // receive loop can attribute a quoted reply to the right TTL of
        // a flow. Constant per TTL: flows still differ only in the label.
        spec.payload_bytes =
            static_cast<std::uint16_t>(12 + requests[i].ttl);
      }

      now_ += config_.send_interval;
      ++packets_sent_;
      ++trace_probes_sent_;
      results[i].probe_ip_id = spec.ip_id;
      results[i].send_time = now_;
      window.push_back(Datagram{net::build_udp_probe(spec), now_});
    }

    const auto replies = transact_window(window);
    MMLPT_ASSERT(replies.size() == pending.size());
    std::vector<std::size_t> still_pending;
    Nanos latest_reply = now_;
    for (std::size_t slot = 0; slot < pending.size(); ++slot) {
      const std::size_t i = pending[slot];
      if (!replies[slot]) {
        still_pending.push_back(i);
        continue;
      }
      const auto reply = net::parse_reply(replies[slot]->datagram);
      auto& result = results[i];
      result.answered = true;
      result.responder = reply.responder();
      result.from_destination = reply.is_port_unreachable();
      result.reply_ip_id = reply.reply_ip_id();
      result.reply_ttl = reply.reply_ttl();
      result.mpls_labels = reply.mpls_labels();
      result.recv_time = result.send_time + replies[slot]->rtt;
      result.attempts = attempt + 1;
      if (rtt_seconds_ != nullptr) {
        rtt_seconds_->observe(static_cast<double>(replies[slot]->rtt) / 1e9);
      }
      obs::instant("rtt_sample", "probe",
                   {{"ttl", static_cast<double>(requests[i].ttl)},
                    {"rtt_us", static_cast<double>(replies[slot]->rtt) / 1e3}});
      latest_reply = std::max(latest_reply, result.recv_time);
    }
    now_ = latest_reply;  // the window waits for its slowest answer
    pending = std::move(still_pending);
  }
  for (const std::size_t i : pending) {
    results[i].attempts = config_.max_retries + 1;
  }
  return results;
}

EchoProbeResult ProbeEngine::ping(net::IpAddress target) {
  // One-element window, same reduction as probe().
  auto results = ping_batch({&target, 1});
  return std::move(results.front());
}

std::vector<EchoProbeResult> ProbeEngine::ping_batch(
    std::span<const net::IpAddress> targets) {
  std::vector<EchoProbeResult> results(targets.size());
  std::vector<std::size_t> pending(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) pending[i] = i;

  for (int attempt = 0; attempt <= config_.max_retries && !pending.empty();
       ++attempt) {
    if (attempt > 0 && retries_ != nullptr) retries_->add(pending.size());
    std::vector<Datagram> window;
    window.reserve(pending.size());
    for (const std::size_t i : pending) {
      const std::uint16_t ip_id = next_probe_ip_id_++;
      auto datagram = net::build_echo_probe(
          config_.source, targets[i], /*identifier=*/0x4D4C /* "ML" */,
          next_echo_sequence_++, /*ttl=*/64, ip_id);
      now_ += config_.send_interval;
      ++packets_sent_;
      ++echo_probes_sent_;
      results[i].probe_ip_id = ip_id;
      results[i].send_time = now_;
      window.push_back(Datagram{std::move(datagram), now_});
    }

    const auto replies = transact_window(window);
    MMLPT_ASSERT(replies.size() == pending.size());
    std::vector<std::size_t> still_pending;
    Nanos latest_reply = now_;
    for (std::size_t slot = 0; slot < pending.size(); ++slot) {
      const std::size_t i = pending[slot];
      if (!replies[slot]) {
        still_pending.push_back(i);
        continue;
      }
      const auto reply = net::parse_reply(replies[slot]->datagram);
      if (!reply.is_echo_reply()) {  // same per-attempt filter as ping()
        still_pending.push_back(i);
        continue;
      }
      auto& result = results[i];
      result.answered = true;
      result.responder = reply.responder();
      result.reply_ip_id = reply.reply_ip_id();
      result.reply_ttl = reply.reply_ttl();
      result.recv_time = result.send_time + replies[slot]->rtt;
      result.attempts = attempt + 1;
      if (rtt_seconds_ != nullptr) {
        rtt_seconds_->observe(static_cast<double>(replies[slot]->rtt) / 1e9);
      }
      latest_reply = std::max(latest_reply, result.recv_time);
    }
    now_ = latest_reply;
    pending = std::move(still_pending);
  }
  for (const std::size_t i : pending) {
    results[i].attempts = config_.max_retries + 1;
  }
  return results;
}

}  // namespace mmlpt::probe
