// io_uring-backed real-network transport: the TransportQueue seam was
// deliberately shaped like io_uring (submit/poll/cancel, per-ticket
// deadlines), and this backend closes the loop by mapping it onto a real
// ring. One submitted window becomes one batch of IORING_OP_SENDMSG
// SQEs plus a single IORING_OP_TIMEOUT SQE carrying the ticket's
// deadline, published with ONE io_uring_enter — the per-probe
// sendto/poll syscall cost of RawSocketNetwork collapses to one kernel
// crossing per window. (A timeout LINKed to the sendmsg would bound the
// SEND, which completes immediately on a raw socket; the reply deadline
// is what the contract needs, so the timeout is an independent op that
// expires the whole ticket.)
//
// Receive path: a small pool of IORING_OP_RECVMSG ops stays armed on the
// raw ICMP/ICMPv6 socket, each re-armed as its completion is reaped, so
// replies complete into the ring without a poll() loop. Every reply
// funnels into the same two-tier attribution (ReplyAttributor) the
// poll backend uses — byte-identical matching semantics by construction.
//
// cancel(ticket) resolves the ticket's pending slots synchronously
// (CancellableNetwork / daemon cancel semantics are preserved: the
// completions surface on the next poll) and files IORING_OP_ASYNC_CANCEL
// against the ticket's in-kernel timeout so the ring drops it early.
//
// Every in-flight kernel op owns heap-allocated, stable storage (msghdr,
// iovec, buffers, timespec) held in op tables until its CQE arrives —
// completions referencing freed ticket slots is the classic io_uring
// lifetime bug, and the ASan leg exercises exactly this path.
//
// Requires CAP_NET_RAW and a kernel with io_uring (5.1+, not disabled by
// sysctl/seccomp): construction throws SystemError otherwise. Use
// supported() (the io_uring_setup capability probe) to decide between
// this backend and RawSocketNetwork at startup.
#ifndef MMLPT_PROBE_IO_URING_NETWORK_H
#define MMLPT_PROBE_IO_URING_NETWORK_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/ip_address.h"
#include "net/packet.h"
#include "obs/metrics.h"
#include "probe/network.h"
#include "probe/reply_attribution.h"

namespace mmlpt::probe {

namespace uring {
class Ring;
}  // namespace uring

class IoUringNetwork final : public Network {
 public:
  struct Config {
    std::chrono::milliseconds reply_timeout{1000};
    /// Socket family; IPv6 reconstructs reply headers like the poll
    /// backend does.
    net::Family family = net::Family::kIpv4;
    /// Submission-queue depth. A window of N probes needs N+1 SQEs;
    /// larger windows still fit — get_sqe() flushes mid-batch.
    unsigned ring_entries = 256;
    /// RECVMSG ops kept armed on the receive socket.
    unsigned recv_slots = 8;
    /// Registry the backend's counters live in (series labeled
    /// transport="uring"). Null = a privately-owned registry, so the
    /// counters always exist and stats() stays a pure view.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// True when this kernel can host the backend (cached io_uring_setup
  /// probe). Constructing when false throws SystemError.
  [[nodiscard]] static bool supported() noexcept;

  explicit IoUringNetwork(Config config);
  ~IoUringNetwork() override;

  IoUringNetwork(const IoUringNetwork&) = delete;
  IoUringNetwork& operator=(const IoUringNetwork&) = delete;

  [[nodiscard]] std::optional<Received> transact(
      std::span<const std::uint8_t> datagram, Nanos now) override;

  void submit(std::span<const Datagram> window, Ticket ticket,
              const SubmitOptions& options) override;
  using Network::submit;
  [[nodiscard]] std::vector<Completion> poll_completions() override;
  void cancel(Ticket ticket) override;
  [[nodiscard]] std::size_t pending() const override;

  /// Observable syscall-shape counters (bench/test instrumentation).
  /// Snapshot view over the registry series — the registry counters are
  /// the single source of truth.
  struct Stats {
    std::uint64_t enters = 0;        ///< io_uring_enter syscalls
    std::uint64_t sqes = 0;          ///< SQEs prepared
    std::uint64_t send_cqes = 0;     ///< sendmsg completions reaped
    std::uint64_t recv_cqes = 0;     ///< recvmsg completions reaped
    std::uint64_t timeout_cqes = 0;  ///< ticket-deadline completions
    std::uint64_t recvs_retired = 0;  ///< receive slots retired on
                                      ///< persistent error completions
  };
  [[nodiscard]] Stats stats() const noexcept {
    return Stats{enters_->value(),       sqes_->value(),
                 send_cqes_->value(),    recv_cqes_->value(),
                 timeout_cqes_->value(), recvs_retired_->value()};
  }

 private:
  using Clock = ReplyAttributor::Clock;

  struct SendOp;
  struct RecvOp;
  struct TimeoutOp;

  void arm_recv(std::uint64_t id);
  /// File IORING_OP_ASYNC_CANCEL against `ticket`'s in-kernel timeout
  /// (no-op when none is armed). Prepares the SQE only; the caller
  /// flushes.
  void cancel_ticket_timeout(Ticket ticket);
  /// Cancel the timeouts of tickets with no pending slots left, so a
  /// fully-answered ticket does not hold its deadline op in the ring
  /// for the rest of the reply window (teardown would have to wait it
  /// out).
  void reap_settled_timeouts();
  void drain_cqes();
  void handle_cqe(std::uint64_t user_data, std::int32_t res);
  void handle_recv(RecvOp& op, std::int32_t res);

  void register_metrics();

  Config config_;
  int send_fd_ = -1;
  int recv_fd_ = -1;
  std::unique_ptr<uring::Ring> ring_;
  ReplyAttributor attributor_;

  // In-flight kernel ops, keyed by the id encoded in user_data. Entries
  // live until their CQE is reaped — the op structs own every buffer the
  // kernel may still read or write.
  std::uint64_t next_op_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<SendOp>> sends_;
  std::unordered_map<std::uint64_t, std::unique_ptr<RecvOp>> recvs_;
  std::unordered_map<std::uint64_t, std::unique_ptr<TimeoutOp>> timeouts_;
  /// ticket -> its in-kernel timeout op (for ASYNC_CANCEL on cancel()).
  std::unordered_map<Ticket, std::uint64_t> ticket_timeouts_;
  /// Destructor teardown: reaped receives are retired, not re-armed.
  bool draining_ = false;
  /// Backing registry when Config::metrics is null.
  obs::MetricsRegistry fallback_metrics_;
  obs::Counter* enters_ = nullptr;
  obs::Counter* sqes_ = nullptr;
  obs::Counter* send_cqes_ = nullptr;
  obs::Counter* recv_cqes_ = nullptr;
  obs::Counter* timeout_cqes_ = nullptr;
  obs::Counter* recvs_retired_ = nullptr;
  obs::Counter* probes_sent_ = nullptr;
  obs::Counter* replies_received_ = nullptr;
  obs::Counter* deadline_expiries_ = nullptr;
};

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_IO_URING_NETWORK_H
