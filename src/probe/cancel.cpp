#include "probe/cancel.h"

namespace mmlpt::probe {

std::optional<Received> CancellableNetwork::transact(
    std::span<const std::uint8_t> datagram, Nanos now) {
  if (canceled()) throw CanceledError("trace canceled before send");
  return inner_->transact(datagram, now);
}

void CancellableNetwork::submit(std::span<const Datagram> window,
                                Ticket ticket, const SubmitOptions& options) {
  if (canceled()) throw CanceledError("trace canceled before submit");
  inner_->submit(window, ticket, options);
  if (!window.empty()) in_flight_[ticket] += window.size();
}

std::vector<Completion> CancellableNetwork::poll_completions() {
  if (canceled()) abort_in_flight();
  auto completions = inner_->poll_completions();
  for (const auto& completion : completions) {
    const auto it = in_flight_.find(completion.ticket);
    if (it == in_flight_.end()) continue;
    if (--it->second == 0) in_flight_.erase(it);
  }
  return completions;
}

void CancellableNetwork::cancel(Ticket ticket) { inner_->cancel(ticket); }

std::size_t CancellableNetwork::pending() const { return inner_->pending(); }

void CancellableNetwork::abort_in_flight() {
  // Resolve every in-flight ticket as canceled (inner cancel() on an
  // already-resolved ticket is a documented no-op), then drain so the
  // backend holds no state for this trace when the exception unwinds.
  for (const auto& [ticket, remaining] : in_flight_) {
    inner_->cancel(ticket);
    ++tickets_canceled_;
  }
  in_flight_.clear();
  while (inner_->pending() > 0) (void)inner_->poll_completions();
  throw CanceledError("trace canceled with probes in flight");
}

}  // namespace mmlpt::probe
