// Thin, liburing-free io_uring shim: raw io_uring_setup/io_uring_enter
// syscalls plus the mmap'd submission/completion ring bookkeeping, just
// enough surface for IoUringNetwork. No new build dependency — the shim
// compiles against <linux/io_uring.h> alone and degrades to a
// "not supported" stub when the uapi header is absent (non-Linux or
// ancient sysroot), so every call site must consult kernel_supported()
// (the runtime io_uring_setup capability probe) before constructing a
// Ring.
//
// Scope deliberately small: single-issuer single-thread rings (the
// TransportQueue contract is single-threaded), identity-mapped SQ array,
// no SQPOLL, no registered buffers/files. The kernel-shared head/tail
// indices are accessed through std::atomic_ref with acquire/release
// ordering per the io_uring memory model.
#ifndef MMLPT_PROBE_URING_H
#define MMLPT_PROBE_URING_H

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define MMLPT_HAS_IO_URING 1
#else
#define MMLPT_HAS_IO_URING 0
#endif

#include <cstddef>
#include <cstdint>
#include <vector>

#if MMLPT_HAS_IO_URING
#include <linux/io_uring.h>
#endif

namespace mmlpt::probe::uring {

/// Runtime capability probe, cached after the first call: true when
/// io_uring_setup() succeeds on this kernel (it can fail with ENOSYS on
/// pre-5.1 kernels, or EPERM under seccomp/sysctl lockdown). The
/// transport selector uses this to fall back to RawSocketNetwork.
[[nodiscard]] bool kernel_supported() noexcept;

#if MMLPT_HAS_IO_URING

/// A completion as the network backend consumes it (the kernel struct,
/// re-exported so callers need not include the uapi header themselves).
using Cqe = ::io_uring_cqe;
using Sqe = ::io_uring_sqe;

class Ring {
 public:
  /// Create a ring with (at least) `entries` SQ slots; throws
  /// mmlpt::SystemError when the kernel refuses.
  explicit Ring(unsigned entries);
  ~Ring();

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  /// Next free SQE, zero-initialised, or nullptr when the submission
  /// queue is full (the caller should flush() and retry).
  [[nodiscard]] Sqe* try_get_sqe() noexcept;

  /// Like try_get_sqe(), but flushes the queue to the kernel when full;
  /// throws SystemError if the kernel cannot drain it.
  [[nodiscard]] Sqe* get_sqe();

  /// Publish every prepared SQE and enter the kernel once. When
  /// `wait_for` > 0, blocks until that many completions are available
  /// (EINTR is retried — in-kernel timeouts hold the absolute deadline,
  /// so retrying cannot stretch it). Returns the number of SQEs the
  /// kernel consumed.
  unsigned flush(unsigned wait_for = 0);

  /// Pop every available CQE into `out` (appending); returns how many.
  std::size_t reap(std::vector<Cqe>& out);

  /// SQEs prepared but not yet flushed to the kernel.
  [[nodiscard]] unsigned unflushed() const noexcept;

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;

  // SQ ring (mmap'd, shared with the kernel).
  void* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned* sq_array_ = nullptr;
  Sqe* sqes_ = nullptr;
  std::size_t sqes_bytes_ = 0;
  /// Local (unpublished) tail: SQEs handed out by get_sqe() but not yet
  /// visible to the kernel.
  unsigned sqe_tail_ = 0;

  // CQ ring. With IORING_FEAT_SINGLE_MMAP it aliases sq_ring_.
  void* cq_ring_ = nullptr;
  std::size_t cq_ring_bytes_ = 0;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  Cqe* cqes_ = nullptr;
};

#endif  // MMLPT_HAS_IO_URING

}  // namespace mmlpt::probe::uring

#endif  // MMLPT_PROBE_URING_H
