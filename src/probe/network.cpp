#include "probe/network.h"

#include <algorithm>

#include "common/assert.h"

namespace mmlpt::probe {

std::vector<std::optional<Received>> Network::transact_batch(
    std::span<const Datagram> batch) {
  // The shim owns the queue for the duration of the drain: completions
  // from an unrelated in-flight ticket would be misrouted here.
  MMLPT_EXPECTS(pending() == 0);
  std::vector<std::optional<Received>> replies(batch.size());
  if (batch.empty()) return replies;

  // Any ticket works on an idle queue; 0 keeps the shim stateless.
  constexpr Ticket kShimTicket = 0;
  submit(batch, kShimTicket);
  std::size_t outstanding = batch.size();
  while (outstanding > 0) {
    auto completions = poll_completions();
    MMLPT_ASSERT(!completions.empty());
    for (auto& completion : completions) {
      MMLPT_ASSERT(completion.ticket == kShimTicket);
      MMLPT_ASSERT(completion.slot < replies.size());
      replies[completion.slot] = std::move(completion.reply);
      --outstanding;
    }
  }
  return replies;
}

void Network::submit(std::span<const Datagram> window, Ticket ticket,
                     const SubmitOptions& /*options*/) {
  queued_.reserve(queued_.size() + window.size());
  for (std::size_t slot = 0; slot < window.size(); ++slot) {
    queued_.push_back(QueuedProbe{ticket, slot, window[slot], false});
  }
}

std::vector<Completion> Network::poll_completions() {
  std::vector<Completion> completions;
  completions.reserve(queued_.size());
  for (auto& probe : queued_) {
    Completion completion;
    completion.ticket = probe.ticket;
    completion.slot = probe.slot;
    if (probe.canceled) {
      completion.canceled = true;
    } else {
      completion.reply = transact(probe.datagram.bytes, probe.datagram.at);
    }
    completions.push_back(std::move(completion));
  }
  queued_.clear();
  return completions;
}

void Network::cancel(Ticket ticket) {
  for (auto& probe : queued_) {
    if (probe.ticket == ticket) probe.canceled = true;
  }
}

std::size_t Network::pending() const { return queued_.size(); }

}  // namespace mmlpt::probe
