#include "probe/network.h"

namespace mmlpt::probe {

std::vector<std::optional<Received>> Network::transact_batch(
    std::span<const Datagram> batch) {
  std::vector<std::optional<Received>> replies;
  replies.reserve(batch.size());
  for (const auto& datagram : batch) {
    replies.push_back(transact(datagram.bytes, datagram.at));
  }
  return replies;
}

}  // namespace mmlpt::probe
