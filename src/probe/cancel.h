// Cooperative trace cancellation over the submit/completion seam.
//
// A CancelToken is a lock-free latch shared between whoever decides a
// trace must stop (a daemon client disconnecting, a SIGINT handler) and
// the transport stack doing the probing. CancellableNetwork is the
// decorator that honours it: wrapped around the outermost transport of a
// trace, it refuses new work once the token fires and — crucially —
// resolves the trace's IN-FLIGHT tickets through the inner queue's
// cancel() before aborting, so an abandoned trace stops spending probes
// instead of draining its deadlines. The abort surfaces as CanceledError,
// which unwinds through ProbeEngine and run_trace_with_network to
// whoever owns the trace.
//
// request() is async-signal-safe (a relaxed atomic store), so a signal
// handler may fire the token directly.
#ifndef MMLPT_PROBE_CANCEL_H
#define MMLPT_PROBE_CANCEL_H

#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "common/error.h"
#include "probe/network.h"

namespace mmlpt::probe {

/// Thrown by CancellableNetwork when its token has fired; means "this
/// trace was abandoned", not "this trace failed".
class CanceledError : public Error {
 public:
  explicit CanceledError(const std::string& what) : Error(what) {}
};

/// One-way latch: once requested, stays requested. Safe to share across
/// threads and to fire from a signal handler.
class CancelToken {
 public:
  // relaxed (both ops): one-way latch carrying no dependent data — the
  // only contract is "eventually observed". The relaxed store keeps
  // request() async-signal-safe; the relaxed load matches it.
  void request() noexcept { requested_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool requested() const noexcept {
    return requested_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> requested_{false};
};

/// Transport decorator enforcing a CancelToken (see file comment). The
/// inner transport and the token must outlive the decorator. Like every
/// queue, a CancellableNetwork is a single-trace, single-threaded object;
/// only the token crosses threads.
class CancellableNetwork final : public Network {
 public:
  CancellableNetwork(Network& inner, const CancelToken& token)
      : inner_(&inner), token_(&token) {}

  /// Throws CanceledError instead of sending once the token has fired.
  [[nodiscard]] std::optional<Received> transact(
      std::span<const std::uint8_t> datagram, Nanos now) override;

  /// Throws CanceledError before submitting once the token has fired
  /// (nothing was shipped, nothing needs cancelling).
  void submit(std::span<const Datagram> window, Ticket ticket,
              const SubmitOptions& options) override;
  using Network::submit;

  /// Once the token has fired: cancel every in-flight ticket through the
  /// inner queue, drain the resulting completions so the backend is left
  /// clean, then throw CanceledError. Otherwise forwards.
  [[nodiscard]] std::vector<Completion> poll_completions() override;

  void cancel(Ticket ticket) override;
  [[nodiscard]] std::size_t pending() const override;

  /// In-flight tickets resolved through inner cancel() by the abort path
  /// (tests assert the cancellation really reached the backend).
  [[nodiscard]] std::uint64_t tickets_canceled() const noexcept {
    return tickets_canceled_;
  }

 private:
  [[nodiscard]] bool canceled() const noexcept { return token_->requested(); }
  /// Cancel + drain every in-flight ticket; leaves inner_ with nothing
  /// pending. Then throws CanceledError.
  [[noreturn]] void abort_in_flight();

  Network* inner_;
  const CancelToken* token_;
  /// Unresolved slots per in-flight ticket (erased when fully resolved).
  std::unordered_map<Ticket, std::size_t> in_flight_;
  std::uint64_t tickets_canceled_ = 0;
};

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_CANCEL_H
