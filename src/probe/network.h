// Transport abstraction: a probe datagram goes out, at most one reply
// datagram comes back. Implementations: SimulatedNetwork (Fakeroute,
// deterministic virtual time) and RawSocketNetwork (real raw sockets,
// requires root and Internet access).
//
// Two probing shapes are supported: transact() blocks per datagram, and
// transact_batch() ships a whole window of probes before collecting the
// replies — the shape survey-scale probing needs. The base class provides
// a serial transact_batch() fallback with identical semantics, so a
// backend only overrides it when it can do better (RawSocketNetwork
// overlaps the reply timeouts of the entire window).
#ifndef MMLPT_PROBE_NETWORK_H
#define MMLPT_PROBE_NETWORK_H

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mmlpt::probe {

using Nanos = std::uint64_t;

struct Received {
  std::vector<std::uint8_t> datagram;
  Nanos rtt = 0;
};

/// One element of a probe window: the raw bytes plus the (virtual or
/// wall-clock) instant they are sent.
struct Datagram {
  std::vector<std::uint8_t> bytes;
  Nanos at = 0;
};

class Network {
 public:
  virtual ~Network() = default;

  /// Send `datagram` at (virtual or wall-clock) time `now`; block until a
  /// matching reply arrives or the transport's timeout elapses.
  [[nodiscard]] virtual std::optional<Received> transact(
      std::span<const std::uint8_t> datagram, Nanos now) = 0;

  /// Send every datagram in `batch`, then collect the replies; slot i of
  /// the result answers batch[i] (nullopt when unanswered). The default
  /// implementation transacts serially — correct for every backend, and
  /// bit-identical to a loop of transact() calls. Overrides must preserve
  /// the slot alignment and per-probe matching semantics.
  [[nodiscard]] virtual std::vector<std::optional<Received>> transact_batch(
      std::span<const Datagram> batch);
};

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_NETWORK_H
