// Blocking-transport compatibility layer over the TransportQueue seam.
//
// The probing pipeline's primary interface is probe::TransportQueue
// (transport_queue.h): submit a window under a ticket, poll completions.
// Network exists for the backends and call sites that still think in
// blocking request/response terms:
//
//   * transact() blocks per datagram — the shape examples and the
//     serial code paths use. It is the one method a minimal backend
//     must implement.
//   * transact_batch() is a thin, NON-virtual shim that re-derives the
//     old blocking window semantics on top of the queue: one submit()
//     plus a drain loop. Slot i of the result answers batch[i], exactly
//     as before the redesign; backends customise batching by
//     implementing the queue, not by overriding the shim.
//
// The base class provides a default queue implementation for
// transact-only backends: submit() buffers the window and
// poll_completions() transacts it serially, bit-identical to the
// historical serial fallback. Real backends (SimulatedNetwork,
// RawSocketNetwork) and the orchestrator decorators override the queue
// methods with genuinely concurrent implementations.
#ifndef MMLPT_PROBE_NETWORK_H
#define MMLPT_PROBE_NETWORK_H

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "probe/transport_queue.h"

namespace mmlpt::probe {

class Network : public TransportQueue {
 public:
  /// Send `datagram` at (virtual or wall-clock) time `now`; block until a
  /// matching reply arrives or the transport's timeout elapses.
  [[nodiscard]] virtual std::optional<Received> transact(
      std::span<const std::uint8_t> datagram, Nanos now) = 0;

  /// Compatibility shim: send every datagram in `batch`, block until the
  /// whole window resolves, return slot-aligned replies (nullopt when
  /// unanswered). Implemented once, on top of submit()/poll_completions()
  /// — it must not be interleaved with in-flight direct submissions on
  /// the same queue (asserted).
  [[nodiscard]] std::vector<std::optional<Received>> transact_batch(
      std::span<const Datagram> batch);

  /// Default queue for transact-only backends: the window is buffered at
  /// submit() and transacted serially, in submission order, when
  /// poll_completions() runs — deterministic and bit-identical to a loop
  /// of transact() calls. Deadlines are not enforced mid-window (each
  /// transact applies the backend's own timeout).
  void submit(std::span<const Datagram> window, Ticket ticket,
              const SubmitOptions& options) override;
  using TransportQueue::submit;
  [[nodiscard]] std::vector<Completion> poll_completions() override;
  void cancel(Ticket ticket) override;
  [[nodiscard]] std::size_t pending() const override;

 private:
  struct QueuedProbe {
    Ticket ticket = 0;
    std::size_t slot = 0;
    Datagram datagram;
    bool canceled = false;
  };
  std::vector<QueuedProbe> queued_;
};

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_NETWORK_H
