// Transport abstraction: a probe datagram goes out, at most one reply
// datagram comes back. Implementations: SimulatedNetwork (Fakeroute,
// deterministic virtual time) and RawSocketNetwork (real raw sockets,
// requires root and Internet access).
#ifndef MMLPT_PROBE_NETWORK_H
#define MMLPT_PROBE_NETWORK_H

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mmlpt::probe {

using Nanos = std::uint64_t;

struct Received {
  std::vector<std::uint8_t> datagram;
  Nanos rtt = 0;
};

class Network {
 public:
  virtual ~Network() = default;

  /// Send `datagram` at (virtual or wall-clock) time `now`; block until a
  /// matching reply arrives or the transport's timeout elapses.
  [[nodiscard]] virtual std::optional<Received> transact(
      std::span<const std::uint8_t> datagram, Nanos now) = 0;
};

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_NETWORK_H
