#include "probe/transport_select.h"

#include "common/error.h"
#include "probe/io_uring_network.h"
#include "probe/raw_socket_network.h"
#include "probe/uring.h"

namespace mmlpt::probe {

std::optional<TransportKind> parse_transport_name(
    std::string_view name) noexcept {
  if (name == "auto") return TransportKind::kAuto;
  if (name == "poll") return TransportKind::kPoll;
  if (name == "uring") return TransportKind::kUring;
  return std::nullopt;
}

std::string_view transport_name(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kAuto:
      return "auto";
    case TransportKind::kPoll:
      return "poll";
    case TransportKind::kUring:
      return "uring";
  }
  return "auto";
}

TransportKind resolve_transport(TransportKind kind) noexcept {
  if (kind != TransportKind::kAuto) return kind;
  return uring::kernel_supported() ? TransportKind::kUring
                                   : TransportKind::kPoll;
}

std::string_view resolved_transport_name(TransportKind kind) noexcept {
  return transport_name(resolve_transport(kind));
}

std::unique_ptr<Network> make_transport(
    TransportKind kind, net::Family family,
    std::chrono::milliseconds reply_timeout,
    obs::MetricsRegistry* metrics) {
  const TransportKind resolved = resolve_transport(kind);
  if (resolved == TransportKind::kUring) {
    if (!IoUringNetwork::supported()) {
      // Only reachable for an explicit --transport uring: auto never
      // resolves here on a kernel without io_uring.
      throw ConfigError(
          "--transport uring: io_uring not supported by this kernel "
          "(use --transport auto for the poll fallback)");
    }
    IoUringNetwork::Config config;
    config.reply_timeout = reply_timeout;
    config.family = family;
    config.metrics = metrics;
    return std::make_unique<IoUringNetwork>(config);
  }
  RawSocketNetwork::Config config;
  config.reply_timeout = reply_timeout;
  config.family = family;
  config.metrics = metrics;
  return std::make_unique<RawSocketNetwork>(config);
}

}  // namespace mmlpt::probe
