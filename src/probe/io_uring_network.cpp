#include "probe/io_uring_network.h"

#include "common/assert.h"
#include "common/error.h"
#include "probe/uring.h"

#include <array>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#if MMLPT_HAS_IO_URING

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

// Linux < 4.15 headers lack IPV6_HDRINCL; the constant is stable ABI.
#ifndef IPV6_HDRINCL
#define IPV6_HDRINCL 36
#endif

namespace mmlpt::probe {

namespace {

/// user_data layout: the op kind in the top byte, the op-table id below
/// — one 64-bit tag routes every CQE back to its owning table entry.
enum class OpKind : std::uint64_t {
  kSend = 1,
  kRecv = 2,
  kTimeout = 3,
  kCancel = 4,
};
constexpr unsigned kKindShift = 56;

[[nodiscard]] constexpr std::uint64_t make_user_data(
    OpKind kind, std::uint64_t id) noexcept {
  return (static_cast<std::uint64_t>(kind) << kKindShift) | id;
}
[[nodiscard]] constexpr OpKind user_data_kind(std::uint64_t ud) noexcept {
  return static_cast<OpKind>(ud >> kKindShift);
}
[[nodiscard]] constexpr std::uint64_t user_data_id(std::uint64_t ud) noexcept {
  return ud & ((std::uint64_t{1} << kKindShift) - 1);
}

}  // namespace

/// One crafted probe on its way through the ring. The kernel reads
/// msg/iov/to/bytes until the send CQE arrives, so the struct is heap-
/// pinned in sends_ for exactly that long.
struct IoUringNetwork::SendOp {
  Ticket ticket = 0;
  std::size_t slot = 0;
  std::vector<std::uint8_t> bytes;
  iovec iov{};
  msghdr msg{};
  sockaddr_storage to{};
};

/// One armed receive on the raw ICMP socket; re-armed (same storage,
/// same user_data) every time its completion is reaped.
struct IoUringNetwork::RecvOp {
  std::array<std::uint8_t, 2048> buffer{};
  iovec iov{};
  msghdr msg{};
  sockaddr_in6 from{};  // covers both families
  alignas(cmsghdr) std::array<std::uint8_t, 256> control{};
  /// Error completions since the last successful receive; the slot is
  /// retired (not re-armed) when it hits kMaxConsecutiveRecvErrors.
  unsigned consecutive_errors = 0;
};

namespace {
/// A receive failing persistently (EBADF, ENOBUFS) completes again the
/// instant it is re-armed, so unconditional re-arming turns the poll
/// drain loop into a CPU-bound spin until the ticket deadline fires.
/// Transient errors get this many retries before the slot retires.
constexpr unsigned kMaxConsecutiveRecvErrors = 8;
}  // namespace

/// A ticket's reply deadline living in the kernel; the timespec must
/// stay valid while the op is in flight.
struct IoUringNetwork::TimeoutOp {
  Ticket ticket = 0;
  __kernel_timespec ts{};
};

bool IoUringNetwork::supported() noexcept { return uring::kernel_supported(); }

void IoUringNetwork::register_metrics() {
  obs::MetricsRegistry& registry =
      config_.metrics != nullptr ? *config_.metrics : fallback_metrics_;
  const obs::Labels labels{{"transport", "uring"}};
  probes_sent_ =
      registry.counter("mmlpt_transport_probes_sent_total",
                       "Probe datagrams handed to the wire", labels);
  replies_received_ =
      registry.counter("mmlpt_transport_replies_received_total",
                       "Reply datagrams scooped off the socket", labels);
  enters_ = registry.counter("mmlpt_transport_uring_enters_total",
                             "io_uring_enter syscalls", labels);
  sqes_ = registry.counter("mmlpt_transport_uring_sqes_total",
                           "Submission-queue entries prepared", labels);
  send_cqes_ = registry.counter("mmlpt_transport_uring_send_cqes_total",
                                "sendmsg completions reaped", labels);
  recv_cqes_ = registry.counter("mmlpt_transport_uring_recv_cqes_total",
                                "recvmsg completions reaped", labels);
  timeout_cqes_ =
      registry.counter("mmlpt_transport_uring_timeout_cqes_total",
                       "Ticket-deadline timeout completions", labels);
  recvs_retired_ = registry.counter(
      "mmlpt_transport_uring_recvs_retired_total",
      "Receive slots retired on persistent error completions", labels);
  deadline_expiries_ =
      registry.counter("mmlpt_transport_deadline_expiries_total",
                       "Pending slots resolved unanswered by their deadline",
                       labels);
  attributor_.set_expiry_counter(deadline_expiries_);
}

IoUringNetwork::IoUringNetwork(Config config) : config_(config) {
  register_metrics();
  if (!uring::kernel_supported()) {
    throw SystemError("io_uring not supported by this kernel");
  }
  const bool v6 = config_.family == net::Family::kIpv6;
  const int domain = v6 ? AF_INET6 : AF_INET;
  send_fd_ = ::socket(domain, SOCK_RAW, IPPROTO_RAW);
  if (send_fd_ < 0) {
    throw SystemError(std::string("raw send socket: ") + std::strerror(errno) +
                      " (CAP_NET_RAW required)");
  }
  const int on = 1;
  const int level = v6 ? IPPROTO_IPV6 : IPPROTO_IP;
  const int option = v6 ? IPV6_HDRINCL : IP_HDRINCL;
  if (::setsockopt(send_fd_, level, option, &on, sizeof(on)) < 0) {
    ::close(send_fd_);
    throw SystemError(std::string(v6 ? "IPV6_HDRINCL: " : "IP_HDRINCL: ") +
                      std::strerror(errno));
  }
  recv_fd_ = ::socket(domain, SOCK_RAW,
                      v6 ? static_cast<int>(IPPROTO_ICMPV6)
                         : static_cast<int>(IPPROTO_ICMP));
  if (recv_fd_ < 0) {
    ::close(send_fd_);
    throw SystemError(std::string("raw recv socket: ") +
                      std::strerror(errno));
  }
  if (v6) {
    if (::setsockopt(recv_fd_, IPPROTO_IPV6, IPV6_RECVHOPLIMIT, &on,
                     sizeof(on)) < 0) {
      ::close(send_fd_);
      ::close(recv_fd_);
      throw SystemError(std::string("IPV6_RECVHOPLIMIT: ") +
                        std::strerror(errno));
    }
  }
  try {
    ring_ = std::make_unique<uring::Ring>(config_.ring_entries);
    // Keep a pool of receives armed from the start: replies that beat
    // the first reap just wait in the socket buffer.
    for (unsigned i = 0; i < config_.recv_slots; ++i) {
      const std::uint64_t id = next_op_++;
      recvs_.emplace(id, std::make_unique<RecvOp>());
      arm_recv(id);
    }
    ring_->flush();
    enters_->add();
  } catch (...) {
    ring_.reset();
    ::close(send_fd_);
    ::close(recv_fd_);
    throw;
  }
}

IoUringNetwork::~IoUringNetwork() {
  // Drain the ring before freeing op storage: a CQE (or in-kernel DMA)
  // referencing a freed op is the classic lifetime bug. Cancel the
  // armed receives, then reap until every op table is empty (bounded —
  // ring teardown reclaims whatever a sick kernel refuses to complete).
  draining_ = true;
  if (ring_ != nullptr) {
    try {
      for (const auto& [id, op] : recvs_) {
        if (uring::Sqe* sqe = ring_->try_get_sqe()) {
          sqe->opcode = IORING_OP_ASYNC_CANCEL;
          sqe->fd = -1;
          sqe->addr = make_user_data(OpKind::kRecv, id);
          sqe->user_data = make_user_data(OpKind::kCancel, next_op_++);
        }
      }
      // Still-armed ticket deadlines would otherwise make the drain
      // loop below sit out the remainder of the reply window.
      for (const auto& [id, op] : timeouts_) {
        if (uring::Sqe* sqe = ring_->try_get_sqe()) {
          sqe->opcode = IORING_OP_ASYNC_CANCEL;
          sqe->fd = -1;
          sqe->addr = make_user_data(OpKind::kTimeout, id);
          sqe->user_data = make_user_data(OpKind::kCancel, next_op_++);
        }
      }
      for (int rounds = 0; rounds < 64; ++rounds) {
        drain_cqes();
        if (sends_.empty() && recvs_.empty() && timeouts_.empty()) break;
        ring_->flush(1);
      }
    } catch (...) {
      // Teardown stays best-effort; the ring close below reclaims ops.
    }
  }
  ring_.reset();
  if (send_fd_ >= 0) ::close(send_fd_);
  if (recv_fd_ >= 0) ::close(recv_fd_);
}

void IoUringNetwork::arm_recv(std::uint64_t id) {
  auto& op = *recvs_.at(id);
  op.iov = iovec{op.buffer.data(), op.buffer.size()};
  op.msg = msghdr{};
  op.msg.msg_name = &op.from;
  op.msg.msg_namelen = sizeof(op.from);
  op.msg.msg_iov = &op.iov;
  op.msg.msg_iovlen = 1;
  if (config_.family == net::Family::kIpv6) {
    op.control.fill(0);
    op.msg.msg_control = op.control.data();
    op.msg.msg_controllen = op.control.size();
  }
  uring::Sqe* sqe = ring_->get_sqe();
  sqe->opcode = IORING_OP_RECVMSG;
  sqe->fd = recv_fd_;
  sqe->addr = reinterpret_cast<std::uint64_t>(&op.msg);
  sqe->len = 1;
  sqe->user_data = make_user_data(OpKind::kRecv, id);
  sqes_->add();
}

void IoUringNetwork::submit(std::span<const Datagram> window, Ticket ticket,
                            const SubmitOptions& options) {
  if (window.empty()) return;
  const auto now = Clock::now();
  const auto budget =
      options.deadline
          ? std::chrono::nanoseconds(
                static_cast<std::int64_t>(*options.deadline))
          : std::chrono::nanoseconds(config_.reply_timeout);
  const auto deadline = now + budget;

  // Ring errors (get_sqe stuck full after an EBUSY flush, io_uring_enter
  // failure) must not throw mid-window: part of the window may already
  // be queued and attributed, and a partially-submitted ticket would
  // desync the caller's drain loop — the failure mode RawSocketNetwork
  // degrades around too. Failed sends become unanswered slots, and the
  // whole ticket expires whenever its in-kernel deadline cannot be
  // guaranteed.
  bool ring_failed = false;

  // One SENDMSG SQE per probe, all published with a single enter below.
  for (std::size_t slot = 0; slot < window.size(); ++slot) {
    auto op = std::make_unique<SendOp>();
    op->ticket = ticket;
    op->slot = slot;
    op->bytes.assign(window[slot].bytes.begin(), window[slot].bytes.end());
    net::ParsedProbe probe = net::parse_probe(op->bytes);
    uring::Sqe* sqe = nullptr;
    if (!ring_failed) {
      try {
        sqe = ring_->get_sqe();
      } catch (const SystemError&) {
        ring_failed = true;
      }
    }
    if (ring_failed) {
      // The probe never reaches the wire — a failed send is a lost
      // probe, same policy as the poll backend.
      attributor_.resolve_unsent(ticket, slot, std::move(probe));
      continue;
    }
    if (config_.family == net::Family::kIpv4) {
      auto* to = reinterpret_cast<sockaddr_in*>(&op->to);
      to->sin_family = AF_INET;
      to->sin_addr.s_addr = htonl(probe.ip.dst.value());
      op->msg.msg_namelen = sizeof(sockaddr_in);
    } else {
      auto* to = reinterpret_cast<sockaddr_in6*>(&op->to);
      to->sin6_family = AF_INET6;
      std::memcpy(to->sin6_addr.s6_addr, probe.ip6.dst.bytes().data(), 16);
      op->msg.msg_namelen = sizeof(sockaddr_in6);
    }
    op->iov = iovec{op->bytes.data(), op->bytes.size()};
    op->msg.msg_name = &op->to;
    op->msg.msg_iov = &op->iov;
    op->msg.msg_iovlen = 1;

    const std::uint64_t id = next_op_++;
    sqe->opcode = IORING_OP_SENDMSG;
    sqe->fd = send_fd_;
    sqe->addr = reinterpret_cast<std::uint64_t>(&op->msg);
    sqe->len = 1;
    sqe->user_data = make_user_data(OpKind::kSend, id);
    sqes_->add();

    attributor_.add_pending(ReplyAttributor::PendingSlot{
        ticket, slot, std::move(probe), now, deadline});
    sends_.emplace(id, std::move(op));
  }

  // The ticket's reply deadline as an in-kernel timeout: when it fires,
  // every still-pending slot of the ticket resolves unanswered. (A
  // LINK_TIMEOUT would bound the sendmsg, which completes immediately
  // on a raw socket — the deadline we owe the contract is on the REPLY,
  // so the timeout is a free-standing op.)
  if (!ring_failed) {
    auto timeout = std::make_unique<TimeoutOp>();
    timeout->ticket = ticket;
    timeout->ts.tv_sec = budget.count() / 1'000'000'000;
    timeout->ts.tv_nsec = budget.count() % 1'000'000'000;
    try {
      const std::uint64_t id = next_op_++;
      uring::Sqe* sqe = ring_->get_sqe();
      sqe->opcode = IORING_OP_TIMEOUT;
      sqe->fd = -1;
      sqe->addr = reinterpret_cast<std::uint64_t>(&timeout->ts);
      sqe->len = 1;
      sqe->user_data = make_user_data(OpKind::kTimeout, id);
      sqes_->add();
      ticket_timeouts_[ticket] = id;
      timeouts_.emplace(id, std::move(timeout));
    } catch (const SystemError&) {
      ring_failed = true;
    }
  }

  if (!ring_failed) {
    try {
      ring_->flush();
      enters_->add();
    } catch (const SystemError&) {
      ring_failed = true;
    }
  }

  if (ring_failed) {
    // The ticket's in-kernel deadline is not guaranteed to be armed, so
    // poll_completions()'s "a CQE is always coming" blocking invariant
    // does not hold for it: expire every slot of the ticket still
    // pending, keeping the caller's drain loop in sync. Disown the
    // timeout op (if it was queued after all, its CQE is dropped as
    // stale); its storage stays in timeouts_ until then — the kernel
    // may still read the timespec.
    ticket_timeouts_.erase(ticket);
    attributor_.expire_ticket(ticket);
  }
}

void IoUringNetwork::handle_recv(RecvOp& op, std::int32_t res) {
  if (res <= 0) return;  // errors are handled at the CQE layer
  if (attributor_.pending_slots().empty()) return;  // nothing to match
  const auto n = static_cast<std::size_t>(res);
  std::vector<std::uint8_t> reply;
  if (config_.family == net::Family::kIpv4) {
    reply.assign(op.buffer.data(), op.buffer.data() + n);
  } else {
    int hop_limit = 64;
    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&op.msg); cmsg != nullptr;
         cmsg = CMSG_NXTHDR(&op.msg, cmsg)) {
      if (cmsg->cmsg_level == IPPROTO_IPV6 &&
          cmsg->cmsg_type == IPV6_HOPLIMIT) {
        std::memcpy(&hop_limit, CMSG_DATA(cmsg), sizeof(int));
      }
    }
    net::IpAddress::Bytes src_bytes{};
    std::memcpy(src_bytes.data(), op.from.sin6_addr.s6_addr, 16);
    reply = reconstruct_ipv6_reply(
        {op.buffer.data(), n}, net::IpAddress::v6(src_bytes), hop_limit,
        attributor_.pending_slots().front().probe.src());
  }
  net::ParsedReply got;
  try {
    got = net::parse_reply(reply);
  } catch (const ParseError&) {
    return;  // not an ICMP shape we understand
  }
  attributor_.attribute(got, std::move(reply), Clock::now());
}

void IoUringNetwork::handle_cqe(std::uint64_t user_data, std::int32_t res) {
  const std::uint64_t id = user_data_id(user_data);
  switch (user_data_kind(user_data)) {
    case OpKind::kSend: {
      auto it = sends_.find(id);
      if (it == sends_.end()) break;
      send_cqes_->add();
      if (res < 0) {
        // A failed send behaves like a lost probe (same policy as the
        // poll backend): the slot resolves unanswered if still pending.
        attributor_.resolve_unanswered(it->second->ticket, it->second->slot);
      } else {
        probes_sent_->add();
      }
      sends_.erase(it);
      break;
    }
    case OpKind::kRecv: {
      auto it = recvs_.find(id);
      if (it == recvs_.end()) break;
      recv_cqes_->add();
      if (draining_) {
        recvs_.erase(it);
        break;
      }
      RecvOp& op = *it->second;
      if (res < 0) {
        // Retire a persistently failing slot instead of re-arming it
        // forever (busy spin — see kMaxConsecutiveRecvErrors). With
        // every receive retired, pending slots still resolve through
        // their ticket deadlines.
        if (++op.consecutive_errors >= kMaxConsecutiveRecvErrors) {
          recvs_retired_->add();
          recvs_.erase(it);
          break;
        }
      } else {
        op.consecutive_errors = 0;
        if (res > 0) replies_received_->add();
        handle_recv(op, res);
      }
      arm_recv(id);
      break;
    }
    case OpKind::kTimeout: {
      auto it = timeouts_.find(id);
      if (it == timeouts_.end()) break;
      timeout_cqes_->add();
      const Ticket ticket = it->second->ticket;
      auto owner = ticket_timeouts_.find(ticket);
      if (owner != ticket_timeouts_.end() && owner->second == id) {
        // This op is still the ticket's registered deadline. -ETIME is
        // the deadline firing; any other resolution (kernel refusal)
        // must still never strand a pending slot, so the ticket's
        // leftovers expire either way. Slots already answered or
        // canceled are untouched.
        ticket_timeouts_.erase(owner);
        attributor_.expire_ticket(ticket);
      }
      // Otherwise the op is stale: cancel()/reap_settled_timeouts()
      // already disowned it and its -ECANCELED CQE arrived late. The
      // ticket may have been reused by now (contract-legal once
      // resolved — transact() reuses ticket 0 every call), so expiring
      // here would kill the reused ticket's fresh slots; just drop the
      // op storage.
      timeouts_.erase(it);
      break;
    }
    case OpKind::kCancel:
      break;  // the target op's own CQE does the bookkeeping
  }
}

void IoUringNetwork::drain_cqes() {
  std::vector<uring::Cqe> cqes;
  while (ring_->reap(cqes) > 0) {
    for (const auto& cqe : cqes) handle_cqe(cqe.user_data, cqe.res);
    cqes.clear();
  }
}

std::vector<Completion> IoUringNetwork::poll_completions() {
  while (!attributor_.has_ready() && !attributor_.pending_slots().empty()) {
    drain_cqes();
    if (attributor_.has_ready() || attributor_.pending_slots().empty()) break;
    // Safe to block: every pending slot's ticket holds an in-kernel
    // timeout, so a CQE is always coming.
    ring_->flush(1);
    enters_->add();
  }
  reap_settled_timeouts();
  // Publish any receive re-arms (and timeout reaps) prepared while
  // reaping before handing control back — replies landing meanwhile
  // wait in the socket buffer.
  if (ring_->unflushed() > 0) {
    ring_->flush();
    enters_->add();
  }
  return attributor_.take_ready();
}

void IoUringNetwork::cancel_ticket_timeout(Ticket ticket) {
  auto it = ticket_timeouts_.find(ticket);
  if (it == ticket_timeouts_.end()) return;
  // Drop the ticket's in-kernel deadline early; its CQE (-ECANCELED)
  // cleans the op table. Erased here so a second cancel cannot file a
  // duplicate; the CQE handler tolerates the missing owner entry.
  uring::Sqe* sqe = ring_->get_sqe();
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->fd = -1;
  sqe->addr = make_user_data(OpKind::kTimeout, it->second);
  sqe->user_data = make_user_data(OpKind::kCancel, next_op_++);
  sqes_->add();
  ticket_timeouts_.erase(it);
}

void IoUringNetwork::reap_settled_timeouts() {
  // O(tickets): the attributor keeps a per-ticket pending count, so the
  // sweep never rescans the pending-slot table per ticket (quadratic
  // under the fleet hub, which multiplexes many tracers onto one ring).
  for (auto it = ticket_timeouts_.begin(); it != ticket_timeouts_.end();) {
    const Ticket ticket = it->first;
    ++it;  // advance first: cancel_ticket_timeout erases the entry
    if (attributor_.pending_for(ticket) == 0) cancel_ticket_timeout(ticket);
  }
}

void IoUringNetwork::cancel(Ticket ticket) {
  attributor_.cancel(ticket);
  cancel_ticket_timeout(ticket);
  if (ring_->unflushed() > 0) {
    ring_->flush();
    enters_->add();
  }
}

std::size_t IoUringNetwork::pending() const { return attributor_.unresolved(); }

std::optional<Received> IoUringNetwork::transact(
    std::span<const std::uint8_t> datagram, Nanos /*now*/) {
  // The serial path is the queue path with a one-slot window; it must
  // not interleave with in-flight submissions (their completions would
  // be misrouted).
  MMLPT_EXPECTS(pending() == 0);
  const Datagram window[] = {Datagram{{datagram.begin(), datagram.end()}, 0}};
  submit(window, /*ticket=*/0);
  std::optional<Received> reply;
  std::size_t outstanding = 1;
  while (outstanding > 0) {
    auto completions = poll_completions();
    MMLPT_ASSERT(!completions.empty());
    for (auto& completion : completions) {
      reply = std::move(completion.reply);
      --outstanding;
    }
  }
  return reply;
}

}  // namespace mmlpt::probe

#else  // !MMLPT_HAS_IO_URING

namespace mmlpt::probe {

// Stub bodies for platforms without the io_uring uapi header: the
// capability probe says "unsupported", the constructor throws, and the
// remaining overrides are unreachable but must exist to link.
struct IoUringNetwork::SendOp {};
struct IoUringNetwork::RecvOp {};
struct IoUringNetwork::TimeoutOp {};

bool IoUringNetwork::supported() noexcept { return false; }

IoUringNetwork::IoUringNetwork(Config config) : config_(config) {
  throw SystemError("io_uring is not available on this platform");
}

IoUringNetwork::~IoUringNetwork() = default;

void IoUringNetwork::submit(std::span<const Datagram>, Ticket,
                            const SubmitOptions&) {
  throw SystemError("io_uring is not available on this platform");
}

std::vector<Completion> IoUringNetwork::poll_completions() {
  throw SystemError("io_uring is not available on this platform");
}

void IoUringNetwork::cancel(Ticket) {}

std::size_t IoUringNetwork::pending() const { return 0; }

std::optional<Received> IoUringNetwork::transact(
    std::span<const std::uint8_t>, Nanos) {
  throw SystemError("io_uring is not available on this platform");
}

void IoUringNetwork::arm_recv(std::uint64_t) {}
void IoUringNetwork::drain_cqes() {}
void IoUringNetwork::handle_cqe(std::uint64_t, std::int32_t) {}
void IoUringNetwork::handle_recv(RecvOp&, std::int32_t) {}

}  // namespace mmlpt::probe

#endif  // MMLPT_HAS_IO_URING
