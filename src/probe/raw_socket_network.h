// Real-network backend using Linux raw sockets. This is the deployment
// path the paper's tool uses on PlanetLab: IP_HDRINCL raw socket for
// sending crafted probes, a raw ICMP socket for receiving replies, and
// quoted-probe matching to pair them up.
//
// Requires CAP_NET_RAW (root) and Internet access; constructing without
// privileges throws mmlpt::SystemError. Unit tests therefore run against
// SimulatedNetwork; this backend is exercised by examples/quickstart when
// run with --real on a privileged host.
#ifndef MMLPT_PROBE_RAW_SOCKET_NETWORK_H
#define MMLPT_PROBE_RAW_SOCKET_NETWORK_H

#include <chrono>

#include "probe/network.h"

namespace mmlpt::probe {

class RawSocketNetwork final : public Network {
 public:
  struct Config {
    std::chrono::milliseconds reply_timeout{1000};
  };

  explicit RawSocketNetwork(Config config);
  ~RawSocketNetwork() override;

  RawSocketNetwork(const RawSocketNetwork&) = delete;
  RawSocketNetwork& operator=(const RawSocketNetwork&) = delete;

  [[nodiscard]] std::optional<Received> transact(
      std::span<const std::uint8_t> datagram, Nanos now) override;

  /// Batched path: fire the whole window back-to-back, then run ONE
  /// poll()-driven receive loop whose deadline covers the window — the
  /// reply timeouts overlap instead of accruing serially, so an
  /// unanswered hop costs one timeout for the window rather than one per
  /// probe. Replies are matched back to their probe slot by quoted
  /// ports / echo identifiers, exactly as in transact().
  [[nodiscard]] std::vector<std::optional<Received>> transact_batch(
      std::span<const Datagram> batch) override;

 private:
  /// True when `reply` is the ICMP answer to `probe` (quoted ports/IP-ID
  /// match, or echo identifier/sequence match).
  [[nodiscard]] static bool matches(std::span<const std::uint8_t> probe,
                                    std::span<const std::uint8_t> reply);

  /// True when the reply's quoted IP identification equals the probe's —
  /// the per-probe discriminator matches() lacks. Two probes of the SAME
  /// flow at different TTLs carry identical ports, so a batched window
  /// needs the IP-ID to attribute each Time-Exceeded to the right slot.
  /// (Echo replies are already exact per identifier/sequence.)
  [[nodiscard]] static bool quoted_id_matches(
      std::span<const std::uint8_t> probe,
      std::span<const std::uint8_t> reply);

  Config config_;
  int send_fd_ = -1;
  int recv_fd_ = -1;
};

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_RAW_SOCKET_NETWORK_H
