// Real-network backend using Linux raw sockets. This is the deployment
// path the paper's tool uses on PlanetLab: a header-included raw socket
// for sending crafted probes, a raw ICMP / ICMPv6 socket for receiving
// replies, and quoted-probe matching to pair them up.
//
// IPv4 uses IP_HDRINCL; IPv6 uses IPV6_HDRINCL (Linux >= 4.15) so the
// crafted flow label goes out exactly as built. ICMPv6 raw sockets
// deliver the message without its IPv6 header, so the receive path
// reconstructs one from the peer address and ancillary hop limit before
// handing the datagram to the shared parser.
//
// Completion-queue backend: submit() fires a window with ONE sendmmsg()
// batch and records each probe as a pending slot with a per-ticket
// deadline (Config::reply_timeout unless SubmitOptions::deadline
// overrides it); poll_completions() runs ONE poll()-driven receive loop
// over every pending slot of every in-flight ticket, draining each
// wakeup with recvmmsg() so a burst of replies costs one syscall, not
// one per datagram. N concurrent tracers multiplexed onto this socket
// pair (the fleet merger) share a single receive loop and their reply
// timeouts all overlap. Reply-to-slot matching is the shared two-tier
// attribution policy (probe::ReplyAttributor).
//
// The receive loop is hardened against EINTR and deadline drift: after
// every wakeup — signal, stray packet, poll() returning early on its
// truncated millisecond budget — the remaining timeout is recomputed
// from the monotonic clock against each ticket's absolute deadline
// (see poll_budget_ms), never reused from the original budget. The
// recompute happens once per WAKEUP, not once per received datagram
// (stats().budget_recomputes is the regression guard).
//
// Requires CAP_NET_RAW (root) and Internet access; constructing without
// privileges throws mmlpt::SystemError. Unit tests therefore run against
// SimulatedNetwork; the loopback conformance suite exercises this
// backend directly when run privileged.
#ifndef MMLPT_PROBE_RAW_SOCKET_NETWORK_H
#define MMLPT_PROBE_RAW_SOCKET_NETWORK_H

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>

#include "net/ip_address.h"
#include "net/packet.h"
#include "obs/metrics.h"
#include "probe/network.h"
#include "probe/reply_attribution.h"

namespace mmlpt::probe {

/// The poll() budget for one receive-loop wakeup: the time remaining
/// until `deadline`, measured from `now` (a fresh monotonic-clock
/// sample), rounded UP to whole milliseconds so a sub-millisecond
/// remainder still waits instead of spinning or expiring early. Returns
/// 0 when the deadline has passed — the caller resolves expired slots
/// rather than polling. Pure so the EINTR/drift discipline is unit
/// testable without a socket.
[[nodiscard]] constexpr int poll_budget_ms(
    std::chrono::steady_clock::time_point now,
    std::chrono::steady_clock::time_point deadline) noexcept {
  if (deadline <= now) return 0;
  const auto remaining = std::chrono::duration_cast<std::chrono::nanoseconds>(
      deadline - now);
  const auto ms = (remaining.count() + 999'999) / 1'000'000;  // ceil
  return static_cast<int>(std::min<long long>(
      ms, std::numeric_limits<int>::max()));
}

class RawSocketNetwork final : public Network {
 public:
  struct Config {
    std::chrono::milliseconds reply_timeout{1000};
    /// Socket family. IPv6 probing needs an explicit source address in
    /// the crafted probes (the reply parser reconstructs the reply's
    /// destination from it).
    net::Family family = net::Family::kIpv4;
    /// Registry the backend's counters live in (series labeled
    /// transport="poll"). Null = a privately-owned registry, so the
    /// counters always exist and stats() stays a pure view.
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit RawSocketNetwork(Config config);
  ~RawSocketNetwork() override;

  RawSocketNetwork(const RawSocketNetwork&) = delete;
  RawSocketNetwork& operator=(const RawSocketNetwork&) = delete;

  [[nodiscard]] std::optional<Received> transact(
      std::span<const std::uint8_t> datagram, Nanos now) override;

  void submit(std::span<const Datagram> window, Ticket ticket,
              const SubmitOptions& options) override;
  using Network::submit;
  [[nodiscard]] std::vector<Completion> poll_completions() override;
  void cancel(Ticket ticket) override;
  [[nodiscard]] std::size_t pending() const override;

  /// Observable syscall-shape counters: the batched fast path and the
  /// once-per-wakeup budget discipline are regression-tested through
  /// these, not timed. Snapshot view over the registry series — the
  /// registry counters are the single source of truth.
  struct Stats {
    std::uint64_t sendmmsg_calls = 0;   ///< send batches shipped
    std::uint64_t send_datagrams = 0;   ///< probes sent (all batches)
    std::uint64_t recvmmsg_calls = 0;   ///< receive batches drained
    std::uint64_t recv_datagrams = 0;   ///< datagrams scooped up
    std::uint64_t poll_calls = 0;       ///< poll() wakeup waits
    std::uint64_t budget_recomputes = 0;  ///< deadline-budget derivations
  };
  [[nodiscard]] Stats stats() const noexcept {
    return Stats{sendmmsg_calls_->value(),   send_datagrams_->value(),
                 recvmmsg_calls_->value(),   recv_datagrams_->value(),
                 poll_calls_->value(),       budget_recomputes_->value()};
  }

 private:
  using Clock = ReplyAttributor::Clock;

  /// Receive datagrams per recvmmsg() batch; a poll() wakeup loops
  /// batches until the socket is dry, so this only bounds one syscall.
  static constexpr unsigned kRecvBatch = 16;

  /// Drain every datagram already queued on recv_fd_ (non-blocking
  /// recvmmsg until EAGAIN), attributing each to its pending slot.
  void drain_replies();

  void register_metrics();

  Config config_;
  int send_fd_ = -1;
  int recv_fd_ = -1;
  ReplyAttributor attributor_;
  /// Backing registry when Config::metrics is null.
  obs::MetricsRegistry fallback_metrics_;
  obs::Counter* sendmmsg_calls_ = nullptr;
  obs::Counter* send_datagrams_ = nullptr;
  obs::Counter* recvmmsg_calls_ = nullptr;
  obs::Counter* recv_datagrams_ = nullptr;
  obs::Counter* poll_calls_ = nullptr;
  obs::Counter* budget_recomputes_ = nullptr;
  obs::Counter* deadline_expiries_ = nullptr;
};

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_RAW_SOCKET_NETWORK_H
