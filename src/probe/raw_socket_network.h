// Real-network backend using Linux raw sockets. This is the deployment
// path the paper's tool uses on PlanetLab: a header-included raw socket
// for sending crafted probes, a raw ICMP / ICMPv6 socket for receiving
// replies, and quoted-probe matching to pair them up.
//
// IPv4 uses IP_HDRINCL; IPv6 uses IPV6_HDRINCL (Linux >= 4.15) so the
// crafted flow label goes out exactly as built. ICMPv6 raw sockets
// deliver the message without its IPv6 header, so the receive path
// reconstructs one from the peer address and ancillary hop limit before
// handing the datagram to the shared parser.
//
// Completion-queue backend: submit() fires a window back-to-back and
// records each probe as a pending slot with a per-ticket deadline
// (Config::reply_timeout unless SubmitOptions::deadline overrides it);
// poll_completions() runs ONE poll()-driven receive loop over every
// pending slot of every in-flight ticket, so N concurrent tracers
// multiplexed onto this socket pair (the fleet merger) share a single
// receive loop and their reply timeouts all overlap. Replies are matched
// to slots by quoted ports / flow labels / echo identifiers with the
// same two-tier per-probe discrimination the blocking path used.
//
// The receive loop is hardened against EINTR and deadline drift: after
// every wakeup — signal, stray packet, poll() returning early on its
// truncated millisecond budget — the remaining timeout is recomputed
// from the monotonic clock against each ticket's absolute deadline
// (see poll_budget_ms), never reused from the original budget.
//
// Requires CAP_NET_RAW (root) and Internet access; constructing without
// privileges throws mmlpt::SystemError. Unit tests therefore run against
// SimulatedNetwork; this backend is exercised by examples/quickstart when
// run with --real on a privileged host.
#ifndef MMLPT_PROBE_RAW_SOCKET_NETWORK_H
#define MMLPT_PROBE_RAW_SOCKET_NETWORK_H

#include <algorithm>
#include <chrono>
#include <deque>
#include <limits>

#include "net/ip_address.h"
#include "net/packet.h"
#include "probe/network.h"

namespace mmlpt::probe {

/// The poll() budget for one receive-loop wakeup: the time remaining
/// until `deadline`, measured from `now` (a fresh monotonic-clock
/// sample), rounded UP to whole milliseconds so a sub-millisecond
/// remainder still waits instead of spinning or expiring early. Returns
/// 0 when the deadline has passed — the caller resolves expired slots
/// rather than polling. Pure so the EINTR/drift discipline is unit
/// testable without a socket.
[[nodiscard]] constexpr int poll_budget_ms(
    std::chrono::steady_clock::time_point now,
    std::chrono::steady_clock::time_point deadline) noexcept {
  if (deadline <= now) return 0;
  const auto remaining = std::chrono::duration_cast<std::chrono::nanoseconds>(
      deadline - now);
  const auto ms = (remaining.count() + 999'999) / 1'000'000;  // ceil
  return static_cast<int>(std::min<long long>(
      ms, std::numeric_limits<int>::max()));
}

class RawSocketNetwork final : public Network {
 public:
  struct Config {
    std::chrono::milliseconds reply_timeout{1000};
    /// Socket family. IPv6 probing needs an explicit source address in
    /// the crafted probes (the reply parser reconstructs the reply's
    /// destination from it).
    net::Family family = net::Family::kIpv4;
  };

  explicit RawSocketNetwork(Config config);
  ~RawSocketNetwork() override;

  RawSocketNetwork(const RawSocketNetwork&) = delete;
  RawSocketNetwork& operator=(const RawSocketNetwork&) = delete;

  [[nodiscard]] std::optional<Received> transact(
      std::span<const std::uint8_t> datagram, Nanos now) override;

  void submit(std::span<const Datagram> window, Ticket ticket,
              const SubmitOptions& options) override;
  using Network::submit;
  [[nodiscard]] std::vector<Completion> poll_completions() override;
  void cancel(Ticket ticket) override;
  [[nodiscard]] std::size_t pending() const override;

 private:
  using Clock = std::chrono::steady_clock;

  /// One in-flight probe slot awaiting its reply.
  struct PendingSlot {
    Ticket ticket = 0;
    std::size_t slot = 0;
    net::ParsedProbe probe;
    Clock::time_point sent_at;
    Clock::time_point deadline;
  };

  /// A slot already resolved — answered, expired or canceled — kept
  /// (parsed form only) so a late or duplicated reply that names it via
  /// the quoted per-probe discriminator is recognised and dropped
  /// instead of loose-matching onto a different pending slot of the
  /// same flow. Bounded: the newest kResolvedMemory records are kept.
  struct ResolvedSlot {
    net::ParsedProbe probe;
  };
  static constexpr std::size_t kResolvedMemory = 1024;

  /// Send one crafted datagram; `probe` is its parsed form (the
  /// destination comes from there — no re-parse on the send path).
  void send_datagram(const net::ParsedProbe& probe,
                     std::span<const std::uint8_t> datagram);

  /// Drain one packet from recv_fd_; returns the reply as a full
  /// IP datagram (reconstructing the IPv6 header when family is v6,
  /// `reply_dst` being the probes' source). Empty when nothing usable.
  [[nodiscard]] std::vector<std::uint8_t> receive_datagram(
      const net::IpAddress& reply_dst);

  /// Move every pending slot past its deadline into ready_ (unanswered).
  void expire_slots(Clock::time_point now);

  /// Remember a resolved slot's parsed probe for the duplicate check.
  void remember_resolved(net::ParsedProbe probe);

  /// Match one parsed reply against the pending slots (two-tier: exact
  /// per-probe discriminator first, flow-level fallback, duplicate
  /// drop); on a hit, resolve the slot into ready_.
  void attribute_reply(const net::ParsedReply& got,
                       std::vector<std::uint8_t> reply,
                       Clock::time_point now);

  Config config_;
  int send_fd_ = -1;
  int recv_fd_ = -1;
  std::vector<PendingSlot> pending_;
  std::deque<ResolvedSlot> resolved_;
  std::vector<Completion> ready_;
};

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_RAW_SOCKET_NETWORK_H
