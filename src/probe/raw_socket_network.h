// Real-network backend using Linux raw sockets. This is the deployment
// path the paper's tool uses on PlanetLab: IP_HDRINCL raw socket for
// sending crafted probes, a raw ICMP socket for receiving replies, and
// quoted-probe matching to pair them up.
//
// Requires CAP_NET_RAW (root) and Internet access; constructing without
// privileges throws mmlpt::SystemError. Unit tests therefore run against
// SimulatedNetwork; this backend is exercised by examples/quickstart when
// run with --real on a privileged host.
#ifndef MMLPT_PROBE_RAW_SOCKET_NETWORK_H
#define MMLPT_PROBE_RAW_SOCKET_NETWORK_H

#include <chrono>

#include "probe/network.h"

namespace mmlpt::probe {

class RawSocketNetwork final : public Network {
 public:
  struct Config {
    std::chrono::milliseconds reply_timeout{1000};
  };

  explicit RawSocketNetwork(Config config);
  ~RawSocketNetwork() override;

  RawSocketNetwork(const RawSocketNetwork&) = delete;
  RawSocketNetwork& operator=(const RawSocketNetwork&) = delete;

  [[nodiscard]] std::optional<Received> transact(
      std::span<const std::uint8_t> datagram, Nanos now) override;

 private:
  /// True when `reply` is the ICMP answer to `probe` (quoted ports/IP-ID
  /// match, or echo identifier/sequence match).
  [[nodiscard]] static bool matches(std::span<const std::uint8_t> probe,
                                    std::span<const std::uint8_t> reply);

  Config config_;
  int send_fd_ = -1;
  int recv_fd_ = -1;
};

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_RAW_SOCKET_NETWORK_H
