// Real-network backend using Linux raw sockets. This is the deployment
// path the paper's tool uses on PlanetLab: a header-included raw socket
// for sending crafted probes, a raw ICMP / ICMPv6 socket for receiving
// replies, and quoted-probe matching to pair them up.
//
// IPv4 uses IP_HDRINCL; IPv6 uses IPV6_HDRINCL (Linux >= 4.15) so the
// crafted flow label goes out exactly as built. ICMPv6 raw sockets
// deliver the message without its IPv6 header, so the receive path
// reconstructs one from the peer address and ancillary hop limit before
// handing the datagram to the shared parser.
//
// Requires CAP_NET_RAW (root) and Internet access; constructing without
// privileges throws mmlpt::SystemError. Unit tests therefore run against
// SimulatedNetwork; this backend is exercised by examples/quickstart when
// run with --real on a privileged host.
#ifndef MMLPT_PROBE_RAW_SOCKET_NETWORK_H
#define MMLPT_PROBE_RAW_SOCKET_NETWORK_H

#include <chrono>

#include "net/ip_address.h"
#include "net/packet.h"
#include "probe/network.h"

namespace mmlpt::probe {

class RawSocketNetwork final : public Network {
 public:
  struct Config {
    std::chrono::milliseconds reply_timeout{1000};
    /// Socket family. IPv6 probing needs an explicit source address in
    /// the crafted probes (the reply parser reconstructs the reply's
    /// destination from it).
    net::Family family = net::Family::kIpv4;
  };

  explicit RawSocketNetwork(Config config);
  ~RawSocketNetwork() override;

  RawSocketNetwork(const RawSocketNetwork&) = delete;
  RawSocketNetwork& operator=(const RawSocketNetwork&) = delete;

  [[nodiscard]] std::optional<Received> transact(
      std::span<const std::uint8_t> datagram, Nanos now) override;

  /// Batched path: fire the whole window back-to-back, then run ONE
  /// poll()-driven receive loop whose deadline covers the window — the
  /// reply timeouts overlap instead of accruing serially, so an
  /// unanswered hop costs one timeout for the window rather than one per
  /// probe. Replies are matched back to their probe slot by quoted
  /// ports / flow labels / echo identifiers, exactly as in transact().
  [[nodiscard]] std::vector<std::optional<Received>> transact_batch(
      std::span<const Datagram> batch) override;

 private:
  /// True when `reply` is the ICMP(v6) answer to `probe` (quoted
  /// ports / flow label match, or echo identifier/sequence match).
  [[nodiscard]] static bool matches(std::span<const std::uint8_t> probe,
                                    std::span<const std::uint8_t> reply);

  /// True when the reply quotes the probe's per-probe discriminator that
  /// matches() lacks: the IPv4 identification, or on IPv6 the UDP length
  /// (the engine encodes the TTL there — v6 has no identification). Two
  /// probes of the SAME flow at different TTLs carry identical flow
  /// fields, so a batched window needs this to attribute each
  /// Time-Exceeded to the right slot. (Echo replies are already exact
  /// per identifier/sequence.)
  [[nodiscard]] static bool quoted_id_matches(
      std::span<const std::uint8_t> probe,
      std::span<const std::uint8_t> reply);

  /// Send one crafted datagram; `probe` is its parsed form (the
  /// destination comes from there — no re-parse on the send path).
  void send_datagram(const net::ParsedProbe& probe,
                     std::span<const std::uint8_t> datagram);

  /// Drain one packet from recv_fd_; returns the reply as a full
  /// IP datagram (reconstructing the IPv6 header when family is v6,
  /// `reply_dst` being the probes' source). Empty when nothing usable.
  [[nodiscard]] std::vector<std::uint8_t> receive_datagram(
      const net::IpAddress& reply_dst);

  Config config_;
  int send_fd_ = -1;
  int recv_fd_ = -1;
};

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_RAW_SOCKET_NETWORK_H
