// Reply-to-probe attribution shared by every raw transport backend.
//
// RawSocketNetwork (poll()-driven) and IoUringNetwork (completion-ring
// driven) differ only in HOW datagrams reach the wire and come back;
// WHAT a reply means — which pending slot it answers, whether it is a
// duplicate, when a slot's deadline expires — is one policy, factored
// here so the two backends cannot drift apart. The matching rules are
// the two-tier discrimination the blocking path introduced:
//
//   * tier 1 (flow): quoted ports / flow label / echo identifier pair a
//     reply with a probe's flow,
//   * tier 2 (per-probe): the quoted IPv4 identification (or the
//     TTL-encoding IPv6 UDP length) picks the exact slot when several
//     probes of one flow are in flight at different TTLs.
//
// A ReplyAttributor owns the pending-slot table, the bounded memory of
// resolved probes (late/duplicate reply drop) and the ready-completion
// buffer; backends feed it sends, replies, deadlines and cancels and
// drain completions out of it.
#ifndef MMLPT_PROBE_REPLY_ATTRIBUTION_H
#define MMLPT_PROBE_REPLY_ATTRIBUTION_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ip_address.h"
#include "net/packet.h"
#include "probe/transport_queue.h"

namespace mmlpt::obs {
class Counter;
}  // namespace mmlpt::obs

namespace mmlpt::probe {

/// True when `got` is the ICMP(v6) answer to `sent` (quoted ports / flow
/// label match, or echo identifier/sequence match). Struct level — the
/// receive loop parses each packet exactly once.
[[nodiscard]] bool reply_matches_probe(const net::ParsedProbe& sent,
                                       const net::ParsedReply& got);

/// True when the reply quotes the probe's per-probe discriminator that
/// reply_matches_probe() lacks: the IPv4 identification, or on IPv6 the
/// UDP length (the engine encodes the TTL there — v6 has no
/// identification). Two probes of the SAME flow at different TTLs carry
/// identical flow fields, so in-flight windows need this to attribute
/// each Time-Exceeded to the right slot. (Echo replies are already exact
/// per identifier/sequence.)
[[nodiscard]] bool reply_quotes_probe_id(const net::ParsedProbe& sent,
                                         const net::ParsedReply& got);

/// Rebuild a full IPv6 datagram around an ICMPv6 message the kernel
/// delivered header-less (`payload`, from a raw ICMPv6 socket):
/// source = the replying peer, destination = `reply_dst` (the probes'
/// crafted source), hop limit from the IPV6_HOPLIMIT ancillary value.
/// The kernel has already verified the ICMPv6 checksum and the
/// reconstructed header cannot re-verify it, so the checksum bytes are
/// zeroed — the parser's "unset, skip verification" convention.
[[nodiscard]] std::vector<std::uint8_t> reconstruct_ipv6_reply(
    std::span<std::uint8_t> payload, const net::IpAddress& peer,
    int hop_limit, const net::IpAddress& reply_dst);

/// The backend-independent half of a raw transport: pending slots with
/// per-ticket deadlines, two-tier reply attribution, duplicate/late
/// drop, cancel, and the ready-completion buffer. Single-threaded, like
/// the queues that embed it.
class ReplyAttributor {
 public:
  using Clock = std::chrono::steady_clock;

  /// One in-flight probe slot awaiting its reply.
  struct PendingSlot {
    Ticket ticket = 0;
    std::size_t slot = 0;
    net::ParsedProbe probe;
    Clock::time_point sent_at;
    Clock::time_point deadline;
  };

  /// Bound on the resolved-probe memory used for the duplicate check.
  static constexpr std::size_t kResolvedMemory = 1024;

  /// Record one sent probe as awaiting its reply.
  void add_pending(PendingSlot slot);

  /// Resolve a slot that never reached the wire (send failure) as
  /// unanswered — a failed send behaves like a lost probe.
  void resolve_unsent(Ticket ticket, std::size_t slot,
                      net::ParsedProbe probe);

  /// Resolve one specific still-pending (ticket, slot) as unanswered;
  /// no-op when it already resolved. The ring backend maps failed
  /// asynchronous sends onto lost probes through this.
  void resolve_unanswered(Ticket ticket, std::size_t slot);

  /// Move every pending slot past its deadline into the ready buffer
  /// (unanswered).
  void expire(Clock::time_point now);

  /// Resolve every still-pending slot of `ticket` as unanswered — the
  /// ring backend's per-ticket timeout completion IS the deadline, so it
  /// expires the ticket without consulting the clock.
  void expire_ticket(Ticket ticket);

  /// Resolve every still-pending slot of `ticket` as canceled.
  void cancel(Ticket ticket);

  /// Counter bumped once per slot resolved by deadline expiry (expire()
  /// and expire_ticket()); null = uninstrumented. The owning backend
  /// points this at its `transport`-labeled deadline-expiry counter.
  void set_expiry_counter(obs::Counter* counter) noexcept {
    expiry_counter_ = counter;
  }

  /// Match one parsed reply against the pending slots (two-tier: exact
  /// per-probe discriminator first, flow-level fallback, duplicate
  /// drop); on a hit, resolve the slot into the ready buffer.
  void attribute(const net::ParsedReply& got, std::vector<std::uint8_t> reply,
                 Clock::time_point now);

  [[nodiscard]] bool has_ready() const noexcept { return !ready_.empty(); }
  [[nodiscard]] std::vector<Completion> take_ready();
  /// Backends push completions they resolve themselves (rare paths).
  void push_ready(Completion completion);

  [[nodiscard]] const std::vector<PendingSlot>& pending_slots() const noexcept {
    return pending_;
  }
  /// Still-pending slots of `ticket`, O(1). The ring backend sweeps its
  /// per-ticket timeouts against this instead of rescanning every
  /// pending slot per ticket (quadratic under the fleet hub, which
  /// multiplexes many tracers' tickets onto one backend).
  [[nodiscard]] std::size_t pending_for(Ticket ticket) const noexcept;
  /// Earliest deadline across the pending slots; nullopt when none.
  [[nodiscard]] std::optional<Clock::time_point> earliest_deadline() const;
  /// TransportQueue::pending() semantics: slots submitted but not yet
  /// returned by poll_completions().
  [[nodiscard]] std::size_t unresolved() const noexcept {
    return pending_.size() + ready_.size();
  }

 private:
  /// A slot already resolved — answered, expired or canceled — kept
  /// (parsed form only) so a late or duplicated reply that names it via
  /// the quoted per-probe discriminator is recognised and dropped
  /// instead of loose-matching onto a different pending slot of the
  /// same flow. Bounded: the newest kResolvedMemory records are kept.
  struct ResolvedSlot {
    net::ParsedProbe probe;
  };

  void remember_resolved(net::ParsedProbe probe);
  void resolve_at(std::size_t index, bool canceled);
  void drop_pending_count(Ticket ticket);

  std::vector<PendingSlot> pending_;
  /// pending_ slot count per ticket, kept in lockstep with pending_.
  std::unordered_map<Ticket, std::size_t> pending_per_ticket_;
  std::deque<ResolvedSlot> resolved_;
  std::vector<Completion> ready_;
  obs::Counter* expiry_counter_ = nullptr;
};

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_REPLY_ATTRIBUTION_H
