// Startup-time choice of the real-network transport backend, shared by
// every CLI and the daemon: `auto` resolves through the cached
// io_uring_setup capability probe — IoUringNetwork when the kernel can
// host a ring, transparent fallback to the poll()-driven
// RawSocketNetwork otherwise. An EXPLICIT `uring` request on a kernel
// without io_uring is a configuration error (loud, not silently
// degraded); `poll` always works.
#ifndef MMLPT_PROBE_TRANSPORT_SELECT_H
#define MMLPT_PROBE_TRANSPORT_SELECT_H

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "net/ip_address.h"

namespace mmlpt::obs {
class MetricsRegistry;
}

namespace mmlpt::probe {

class Network;

enum class TransportKind {
  kAuto,   ///< uring when the kernel supports it, else poll
  kPoll,   ///< RawSocketNetwork: poll()-driven, sendmmsg/recvmmsg batched
  kUring,  ///< IoUringNetwork: io_uring submission/completion ring
};

/// Parse a --transport value; nullopt for anything but auto|poll|uring.
[[nodiscard]] std::optional<TransportKind> parse_transport_name(
    std::string_view name) noexcept;

/// The flag spelling for a kind (auto|poll|uring).
[[nodiscard]] std::string_view transport_name(TransportKind kind) noexcept;

/// Resolve `auto` against the running kernel (cached io_uring_setup
/// probe). kPoll and kUring resolve to themselves — validity is
/// make_transport's concern.
[[nodiscard]] TransportKind resolve_transport(TransportKind kind) noexcept;

/// The name a resolved choice is echoed under in status/summary output.
[[nodiscard]] std::string_view resolved_transport_name(
    TransportKind kind) noexcept;

/// Construct the chosen backend (resolving `auto` first). Throws
/// ConfigError when `uring` is requested explicitly but the kernel
/// lacks io_uring; SystemError when socket/ring setup fails
/// (CAP_NET_RAW is required either way). A non-null `metrics` registry
/// receives the backend's transport-labeled series; null leaves the
/// backend on its private fallback registry.
[[nodiscard]] std::unique_ptr<Network> make_transport(
    TransportKind kind, net::Family family,
    std::chrono::milliseconds reply_timeout,
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_TRANSPORT_SELECT_H
