#include "probe/raw_socket_network.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "common/assert.h"
#include "common/error.h"
#include "net/packet.h"

// Linux < 4.15 headers lack IPV6_HDRINCL; the constant is stable ABI.
#ifndef IPV6_HDRINCL
#define IPV6_HDRINCL 36
#endif

namespace mmlpt::probe {

void RawSocketNetwork::register_metrics() {
  obs::MetricsRegistry& registry =
      config_.metrics != nullptr ? *config_.metrics : fallback_metrics_;
  const obs::Labels labels{{"transport", "poll"}};
  send_datagrams_ =
      registry.counter("mmlpt_transport_probes_sent_total",
                       "Probe datagrams handed to the wire", labels);
  recv_datagrams_ =
      registry.counter("mmlpt_transport_replies_received_total",
                       "Reply datagrams scooped off the socket", labels);
  sendmmsg_calls_ =
      registry.counter("mmlpt_transport_sendmmsg_calls_total",
                       "sendmmsg() batches shipped", labels);
  recvmmsg_calls_ =
      registry.counter("mmlpt_transport_recvmmsg_calls_total",
                       "recvmmsg() batches drained", labels);
  poll_calls_ = registry.counter("mmlpt_transport_poll_calls_total",
                                 "poll() wakeup waits", labels);
  budget_recomputes_ =
      registry.counter("mmlpt_transport_budget_recomputes_total",
                       "Deadline-budget derivations (one per wakeup)", labels);
  deadline_expiries_ =
      registry.counter("mmlpt_transport_deadline_expiries_total",
                       "Pending slots resolved unanswered by their deadline",
                       labels);
  attributor_.set_expiry_counter(deadline_expiries_);
}

RawSocketNetwork::RawSocketNetwork(Config config) : config_(config) {
  register_metrics();
  const bool v6 = config_.family == net::Family::kIpv6;
  const int domain = v6 ? AF_INET6 : AF_INET;
  send_fd_ = ::socket(domain, SOCK_RAW, IPPROTO_RAW);
  if (send_fd_ < 0) {
    throw SystemError(std::string("raw send socket: ") + std::strerror(errno) +
                      " (CAP_NET_RAW required)");
  }
  const int on = 1;
  const int level = v6 ? IPPROTO_IPV6 : IPPROTO_IP;
  const int option = v6 ? IPV6_HDRINCL : IP_HDRINCL;
  if (::setsockopt(send_fd_, level, option, &on, sizeof(on)) < 0) {
    ::close(send_fd_);
    throw SystemError(std::string(v6 ? "IPV6_HDRINCL: " : "IP_HDRINCL: ") +
                      std::strerror(errno));
  }
  recv_fd_ = ::socket(domain, SOCK_RAW,
                      v6 ? static_cast<int>(IPPROTO_ICMPV6)
                         : static_cast<int>(IPPROTO_ICMP));
  if (recv_fd_ < 0) {
    ::close(send_fd_);
    throw SystemError(std::string("raw recv socket: ") +
                      std::strerror(errno));
  }
  if (v6) {
    // ICMPv6 raw sockets deliver the message without its IPv6 header;
    // ask for the hop limit so the reconstructed header carries the
    // fingerprint signal.
    if (::setsockopt(recv_fd_, IPPROTO_IPV6, IPV6_RECVHOPLIMIT, &on,
                     sizeof(on)) < 0) {
      ::close(send_fd_);
      ::close(recv_fd_);
      throw SystemError(std::string("IPV6_RECVHOPLIMIT: ") +
                        std::strerror(errno));
    }
  }
}

RawSocketNetwork::~RawSocketNetwork() {
  if (send_fd_ >= 0) ::close(send_fd_);
  if (recv_fd_ >= 0) ::close(recv_fd_);
}

void RawSocketNetwork::submit(std::span<const Datagram> window, Ticket ticket,
                              const SubmitOptions& options) {
  const auto now = Clock::now();
  const auto budget =
      options.deadline
          ? std::chrono::nanoseconds(
                static_cast<std::int64_t>(*options.deadline))
          : std::chrono::nanoseconds(config_.reply_timeout);
  const auto deadline = now + budget;
  const bool v6 = config_.family == net::Family::kIpv6;

  // Build the whole window up front — parsed probes for attribution,
  // per-datagram destinations for the vectorised send.
  const std::size_t count = window.size();
  std::vector<net::ParsedProbe> probes;
  probes.reserve(count);
  std::vector<sockaddr_storage> addrs(count);
  std::vector<iovec> iovs(count);
  std::vector<mmsghdr> msgs(count);
  for (std::size_t slot = 0; slot < count; ++slot) {
    probes.push_back(net::parse_probe(window[slot].bytes));
    auto& addr = addrs[slot];
    socklen_t addr_len = 0;
    if (v6) {
      auto* to = reinterpret_cast<sockaddr_in6*>(&addr);
      to->sin6_family = AF_INET6;
      std::memcpy(to->sin6_addr.s6_addr, probes[slot].ip6.dst.bytes().data(),
                  16);
      addr_len = sizeof(sockaddr_in6);
    } else {
      auto* to = reinterpret_cast<sockaddr_in*>(&addr);
      to->sin_family = AF_INET;
      to->sin_addr.s_addr = htonl(probes[slot].ip.dst.value());
      addr_len = sizeof(sockaddr_in);
    }
    iovs[slot] = iovec{const_cast<std::uint8_t*>(window[slot].bytes.data()),
                       window[slot].bytes.size()};
    msgs[slot] = mmsghdr{};
    msgs[slot].msg_hdr.msg_name = &addr;
    msgs[slot].msg_hdr.msg_namelen = addr_len;
    msgs[slot].msg_hdr.msg_iov = &iovs[slot];
    msgs[slot].msg_hdr.msg_iovlen = 1;
  }

  // One sendmmsg() per window (more only after a mid-batch failure). A
  // failed send behaves like a lost probe: resolve the slot unanswered
  // instead of throwing with part of the window already on the wire — a
  // partially-submitted ticket would leave the queue permanently out of
  // sync with its caller's drain loop.
  std::size_t done = 0;
  while (done < count) {
    const int rc = ::sendmmsg(send_fd_, msgs.data() + done,
                              static_cast<unsigned>(count - done), 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      sendmmsg_calls_->add();
      attributor_.resolve_unsent(ticket, done, std::move(probes[done]));
      ++done;
      continue;
    }
    sendmmsg_calls_->add();
    send_datagrams_->add(static_cast<std::uint64_t>(rc));
    for (std::size_t slot = done; slot < done + static_cast<std::size_t>(rc);
         ++slot) {
      attributor_.add_pending(ReplyAttributor::PendingSlot{
          ticket, slot, std::move(probes[slot]), now, deadline});
    }
    done += static_cast<std::size_t>(rc);
  }
}

void RawSocketNetwork::drain_replies() {
  const bool v6 = config_.family == net::Family::kIpv6;
  std::array<std::array<std::uint8_t, 2048>, kRecvBatch> buffers;
  std::array<sockaddr_in6, kRecvBatch> froms;
  alignas(cmsghdr) std::array<std::array<std::uint8_t, 256>, kRecvBatch>
      controls;
  std::array<iovec, kRecvBatch> iovs;
  std::array<mmsghdr, kRecvBatch> msgs;

  while (!attributor_.pending_slots().empty()) {
    for (unsigned i = 0; i < kRecvBatch; ++i) {
      iovs[i] = iovec{buffers[i].data(), buffers[i].size()};
      msgs[i] = mmsghdr{};
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      if (v6) {
        froms[i] = sockaddr_in6{};
        controls[i].fill(0);
        msgs[i].msg_hdr.msg_name = &froms[i];
        msgs[i].msg_hdr.msg_namelen = sizeof(froms[i]);
        msgs[i].msg_hdr.msg_control = controls[i].data();
        msgs[i].msg_hdr.msg_controllen = controls[i].size();
      }
    }
    const int rc =
        ::recvmmsg(recv_fd_, msgs.data(), kRecvBatch, MSG_DONTWAIT, nullptr);
    if (rc <= 0) return;  // dry (EAGAIN), interrupted, or transient error
    recvmmsg_calls_->add();
    recv_datagrams_->add(static_cast<std::uint64_t>(rc));

    const auto now = Clock::now();
    for (int i = 0; i < rc; ++i) {
      if (attributor_.pending_slots().empty()) break;
      const auto n = static_cast<std::size_t>(msgs[i].msg_len);
      if (n == 0) continue;
      std::vector<std::uint8_t> reply;
      if (v6) {
        int hop_limit = 64;
        for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msgs[i].msg_hdr); cmsg != nullptr;
             cmsg = CMSG_NXTHDR(&msgs[i].msg_hdr, cmsg)) {
          if (cmsg->cmsg_level == IPPROTO_IPV6 &&
              cmsg->cmsg_type == IPV6_HOPLIMIT) {
            std::memcpy(&hop_limit, CMSG_DATA(cmsg), sizeof(int));
          }
        }
        net::IpAddress::Bytes src_bytes{};
        std::memcpy(src_bytes.data(), froms[i].sin6_addr.s6_addr, 16);
        reply = reconstruct_ipv6_reply(
            {buffers[i].data(), n}, net::IpAddress::v6(src_bytes), hop_limit,
            attributor_.pending_slots().front().probe.src());
      } else {
        reply.assign(buffers[i].data(), buffers[i].data() + n);
      }
      net::ParsedReply got;
      try {
        got = net::parse_reply(reply);
      } catch (const ParseError&) {
        continue;  // not an ICMP shape we understand
      }
      attributor_.attribute(got, std::move(reply), now);
    }
    if (rc < static_cast<int>(kRecvBatch)) return;  // socket drained
  }
}

std::vector<Completion> RawSocketNetwork::poll_completions() {
  while (!attributor_.has_ready() && !attributor_.pending_slots().empty()) {
    // Recompute the remaining budget from the monotonic clock on every
    // WAKEUP — EINTR, a stray packet, or poll()'s millisecond-truncated
    // timeout must not shorten (or extend) any ticket's deadline. The
    // recompute is hoisted out of the datagram loop: a burst of replies
    // costs one budget derivation, not one per packet.
    const auto now = Clock::now();
    attributor_.expire(now);
    if (attributor_.has_ready()) break;

    const auto earliest = *attributor_.earliest_deadline();
    budget_recomputes_->add();

    pollfd pfd{recv_fd_, POLLIN, 0};
    poll_calls_->add();
    const int rc = ::poll(&pfd, 1, poll_budget_ms(now, earliest));
    if (rc < 0) {
      if (errno == EINTR) continue;  // loop top re-derives the budget
      throw SystemError(std::string("poll: ") + std::strerror(errno));
    }
    if (rc == 0) continue;  // maybe expired: the loop top decides
    drain_replies();
  }
  return attributor_.take_ready();
}

void RawSocketNetwork::cancel(Ticket ticket) { attributor_.cancel(ticket); }

std::size_t RawSocketNetwork::pending() const {
  return attributor_.unresolved();
}

std::optional<Received> RawSocketNetwork::transact(
    std::span<const std::uint8_t> datagram, Nanos /*now*/) {
  // The serial path is the queue path with a one-slot window; it must
  // not interleave with in-flight submissions (their completions would
  // be misrouted).
  MMLPT_EXPECTS(pending() == 0);
  const Datagram window[] = {Datagram{{datagram.begin(), datagram.end()}, 0}};
  submit(window, /*ticket=*/0);
  std::optional<Received> reply;
  std::size_t outstanding = 1;
  while (outstanding > 0) {
    auto completions = poll_completions();
    MMLPT_ASSERT(!completions.empty());
    for (auto& completion : completions) {
      reply = std::move(completion.reply);
      --outstanding;
    }
  }
  return reply;
}

}  // namespace mmlpt::probe
