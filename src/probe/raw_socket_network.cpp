#include "probe/raw_socket_network.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "net/packet.h"

namespace mmlpt::probe {

RawSocketNetwork::RawSocketNetwork(Config config) : config_(config) {
  send_fd_ = ::socket(AF_INET, SOCK_RAW, IPPROTO_RAW);
  if (send_fd_ < 0) {
    throw SystemError(std::string("raw send socket: ") + std::strerror(errno) +
                      " (CAP_NET_RAW required)");
  }
  const int on = 1;
  if (::setsockopt(send_fd_, IPPROTO_IP, IP_HDRINCL, &on, sizeof(on)) < 0) {
    ::close(send_fd_);
    throw SystemError(std::string("IP_HDRINCL: ") + std::strerror(errno));
  }
  recv_fd_ = ::socket(AF_INET, SOCK_RAW, IPPROTO_ICMP);
  if (recv_fd_ < 0) {
    ::close(send_fd_);
    throw SystemError(std::string("raw recv socket: ") +
                      std::strerror(errno));
  }
}

RawSocketNetwork::~RawSocketNetwork() {
  if (send_fd_ >= 0) ::close(send_fd_);
  if (recv_fd_ >= 0) ::close(recv_fd_);
}

bool RawSocketNetwork::matches(std::span<const std::uint8_t> probe,
                               std::span<const std::uint8_t> reply) {
  try {
    const auto sent = net::parse_probe(probe);
    const auto got = net::parse_reply(reply);
    if (got.is_echo_reply()) {
      return sent.ip.protocol == net::IpProto::kIcmp &&
             got.icmp.identifier == sent.icmp.identifier &&
             got.icmp.sequence == sent.icmp.sequence;
    }
    if (!got.quoted_ip) return false;
    if (got.quoted_ip->dst != sent.ip.dst) return false;
    if (sent.ip.protocol == net::IpProto::kUdp) {
      return got.quoted_udp && got.quoted_udp->src_port == sent.udp.src_port &&
             got.quoted_udp->dst_port == sent.udp.dst_port;
    }
    return got.quoted_icmp && got.quoted_icmp->identifier ==
                                  sent.icmp.identifier;
  } catch (const ParseError&) {
    return false;
  }
}

std::optional<Received> RawSocketNetwork::transact(
    std::span<const std::uint8_t> datagram, Nanos /*now*/) {
  const auto sent = net::parse_probe(datagram);
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_addr.s_addr = htonl(sent.ip.dst.value());

  const auto start = std::chrono::steady_clock::now();
  if (::sendto(send_fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&to), sizeof(to)) < 0) {
    throw SystemError(std::string("sendto: ") + std::strerror(errno));
  }

  std::uint8_t buffer[2048];
  while (true) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    if (elapsed >= config_.reply_timeout) return std::nullopt;

    pollfd pfd{recv_fd_, POLLIN, 0};
    const int ready = ::poll(
        &pfd, 1, static_cast<int>((config_.reply_timeout - elapsed).count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw SystemError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) return std::nullopt;

    const ssize_t n = ::recv(recv_fd_, buffer, sizeof(buffer), 0);
    if (n <= 0) continue;
    const std::span<const std::uint8_t> reply(buffer,
                                              static_cast<std::size_t>(n));
    if (!matches(datagram, reply)) continue;  // someone else's ICMP

    const auto rtt = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start);
    return Received{std::vector<std::uint8_t>(reply.begin(), reply.end()),
                    static_cast<Nanos>(rtt.count())};
  }
}

}  // namespace mmlpt::probe
