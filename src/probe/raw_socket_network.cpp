#include "probe/raw_socket_network.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "net/packet.h"

namespace mmlpt::probe {

RawSocketNetwork::RawSocketNetwork(Config config) : config_(config) {
  send_fd_ = ::socket(AF_INET, SOCK_RAW, IPPROTO_RAW);
  if (send_fd_ < 0) {
    throw SystemError(std::string("raw send socket: ") + std::strerror(errno) +
                      " (CAP_NET_RAW required)");
  }
  const int on = 1;
  if (::setsockopt(send_fd_, IPPROTO_IP, IP_HDRINCL, &on, sizeof(on)) < 0) {
    ::close(send_fd_);
    throw SystemError(std::string("IP_HDRINCL: ") + std::strerror(errno));
  }
  recv_fd_ = ::socket(AF_INET, SOCK_RAW, IPPROTO_ICMP);
  if (recv_fd_ < 0) {
    ::close(send_fd_);
    throw SystemError(std::string("raw recv socket: ") +
                      std::strerror(errno));
  }
}

RawSocketNetwork::~RawSocketNetwork() {
  if (send_fd_ >= 0) ::close(send_fd_);
  if (recv_fd_ >= 0) ::close(recv_fd_);
}

namespace {

/// matches() on pre-parsed structures — the batch receive loop parses
/// each packet exactly once and scans slots at struct level.
bool matches_parsed(const net::ParsedProbe& sent,
                    const net::ParsedReply& got) {
  if (got.is_echo_reply()) {
    return sent.ip.protocol == net::IpProto::kIcmp &&
           got.icmp.identifier == sent.icmp.identifier &&
           got.icmp.sequence == sent.icmp.sequence;
  }
  if (!got.quoted_ip) return false;
  if (got.quoted_ip->dst != sent.ip.dst) return false;
  if (sent.ip.protocol == net::IpProto::kUdp) {
    return got.quoted_udp && got.quoted_udp->src_port == sent.udp.src_port &&
           got.quoted_udp->dst_port == sent.udp.dst_port;
  }
  return got.quoted_icmp &&
         got.quoted_icmp->identifier == sent.icmp.identifier;
}

bool quoted_id_matches_parsed(const net::ParsedProbe& sent,
                              const net::ParsedReply& got) {
  if (got.is_echo_reply()) return true;  // identifier/sequence are exact
  if (!got.quoted_ip) return false;
  return got.quoted_ip->identification == sent.ip.identification;
}

}  // namespace

bool RawSocketNetwork::matches(std::span<const std::uint8_t> probe,
                               std::span<const std::uint8_t> reply) {
  try {
    return matches_parsed(net::parse_probe(probe), net::parse_reply(reply));
  } catch (const ParseError&) {
    return false;
  }
}

std::optional<Received> RawSocketNetwork::transact(
    std::span<const std::uint8_t> datagram, Nanos /*now*/) {
  const auto sent = net::parse_probe(datagram);
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_addr.s_addr = htonl(sent.ip.dst.value());

  const auto start = std::chrono::steady_clock::now();
  if (::sendto(send_fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&to), sizeof(to)) < 0) {
    throw SystemError(std::string("sendto: ") + std::strerror(errno));
  }

  std::uint8_t buffer[2048];
  while (true) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    if (elapsed >= config_.reply_timeout) return std::nullopt;

    pollfd pfd{recv_fd_, POLLIN, 0};
    const int ready = ::poll(
        &pfd, 1, static_cast<int>((config_.reply_timeout - elapsed).count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw SystemError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) return std::nullopt;

    const ssize_t n = ::recv(recv_fd_, buffer, sizeof(buffer), 0);
    if (n <= 0) continue;
    const std::span<const std::uint8_t> reply(buffer,
                                              static_cast<std::size_t>(n));
    if (!matches(datagram, reply)) continue;  // someone else's ICMP

    const auto rtt = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start);
    return Received{std::vector<std::uint8_t>(reply.begin(), reply.end()),
                    static_cast<Nanos>(rtt.count())};
  }
}

bool RawSocketNetwork::quoted_id_matches(std::span<const std::uint8_t> probe,
                                         std::span<const std::uint8_t> reply) {
  try {
    return quoted_id_matches_parsed(net::parse_probe(probe),
                                    net::parse_reply(reply));
  } catch (const ParseError&) {
    return false;
  }
}

std::vector<std::optional<Received>> RawSocketNetwork::transact_batch(
    std::span<const Datagram> batch) {
  std::vector<std::optional<Received>> replies(batch.size());
  if (batch.empty()) return replies;

  // Send the whole window back-to-back; keep each probe's parsed form so
  // the receive loop matches at struct level without re-parsing.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::chrono::steady_clock::time_point> sent_at(batch.size());
  std::vector<net::ParsedProbe> probes;
  probes.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    probes.push_back(net::parse_probe(batch[i].bytes));
    sockaddr_in to{};
    to.sin_family = AF_INET;
    to.sin_addr.s_addr = htonl(probes[i].ip.dst.value());
    sent_at[i] = std::chrono::steady_clock::now();
    if (::sendto(send_fd_, batch[i].bytes.data(), batch[i].bytes.size(), 0,
                 reinterpret_cast<const sockaddr*>(&to), sizeof(to)) < 0) {
      throw SystemError(std::string("sendto: ") + std::strerror(errno));
    }
  }

  // One receive window for all of them: the per-probe timeouts overlap.
  std::size_t unanswered = batch.size();
  std::uint8_t buffer[2048];
  while (unanswered > 0) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    if (elapsed >= config_.reply_timeout) break;

    pollfd pfd{recv_fd_, POLLIN, 0};
    const int ready = ::poll(
        &pfd, 1, static_cast<int>((config_.reply_timeout - elapsed).count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw SystemError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) break;

    const ssize_t n = ::recv(recv_fd_, buffer, sizeof(buffer), 0);
    if (n <= 0) continue;
    const std::span<const std::uint8_t> reply(buffer,
                                              static_cast<std::size_t>(n));
    net::ParsedReply got;
    try {
      got = net::parse_reply(reply);
    } catch (const ParseError&) {
      continue;  // not an ICMP shape we understand
    }
    // Two-tier slot attribution: port matching alone cannot tell apart
    // two outstanding probes of the same flow at different TTLs, so
    // prefer the slot whose probe IP-ID the reply quotes; fall back to
    // the first port match for routers that mangle the quoted header.
    // A quoted IP-ID that lands on an ALREADY answered slot is a
    // duplicated reply — drop it rather than loose-matching it onto a
    // different pending slot of the same flow.
    std::ptrdiff_t exact = -1;
    std::ptrdiff_t loose = -1;
    bool duplicate = false;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!matches_parsed(probes[i], got)) continue;
      if (quoted_id_matches_parsed(probes[i], got)) {
        // The IP-ID pins the reply to exactly this probe.
        if (replies[i]) {
          duplicate = true;
        } else {
          exact = static_cast<std::ptrdiff_t>(i);
        }
        break;
      }
      if (!replies[i] && loose < 0) loose = static_cast<std::ptrdiff_t>(i);
    }
    if (duplicate) continue;
    const std::ptrdiff_t hit = exact >= 0 ? exact : loose;
    if (hit < 0) continue;
    const auto rtt = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() -
        sent_at[static_cast<std::size_t>(hit)]);
    replies[static_cast<std::size_t>(hit)] =
        Received{std::vector<std::uint8_t>(reply.begin(), reply.end()),
                 static_cast<Nanos>(rtt.count())};
    --unanswered;
  }
  return replies;
}

}  // namespace mmlpt::probe
