#include "probe/raw_socket_network.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "net/packet.h"

// Linux < 4.15 headers lack IPV6_HDRINCL; the constant is stable ABI.
#ifndef IPV6_HDRINCL
#define IPV6_HDRINCL 36
#endif

namespace mmlpt::probe {

RawSocketNetwork::RawSocketNetwork(Config config) : config_(config) {
  const bool v6 = config_.family == net::Family::kIpv6;
  const int domain = v6 ? AF_INET6 : AF_INET;
  send_fd_ = ::socket(domain, SOCK_RAW, IPPROTO_RAW);
  if (send_fd_ < 0) {
    throw SystemError(std::string("raw send socket: ") + std::strerror(errno) +
                      " (CAP_NET_RAW required)");
  }
  const int on = 1;
  const int level = v6 ? IPPROTO_IPV6 : IPPROTO_IP;
  const int option = v6 ? IPV6_HDRINCL : IP_HDRINCL;
  if (::setsockopt(send_fd_, level, option, &on, sizeof(on)) < 0) {
    ::close(send_fd_);
    throw SystemError(std::string(v6 ? "IPV6_HDRINCL: " : "IP_HDRINCL: ") +
                      std::strerror(errno));
  }
  recv_fd_ = ::socket(domain, SOCK_RAW,
                      v6 ? static_cast<int>(IPPROTO_ICMPV6)
                         : static_cast<int>(IPPROTO_ICMP));
  if (recv_fd_ < 0) {
    ::close(send_fd_);
    throw SystemError(std::string("raw recv socket: ") +
                      std::strerror(errno));
  }
  if (v6) {
    // ICMPv6 raw sockets deliver the message without its IPv6 header;
    // ask for the hop limit so the reconstructed header carries the
    // fingerprint signal.
    if (::setsockopt(recv_fd_, IPPROTO_IPV6, IPV6_RECVHOPLIMIT, &on,
                     sizeof(on)) < 0) {
      ::close(send_fd_);
      ::close(recv_fd_);
      throw SystemError(std::string("IPV6_RECVHOPLIMIT: ") +
                        std::strerror(errno));
    }
  }
}

RawSocketNetwork::~RawSocketNetwork() {
  if (send_fd_ >= 0) ::close(send_fd_);
  if (recv_fd_ >= 0) ::close(recv_fd_);
}

namespace {

/// matches() on pre-parsed structures — the batch receive loop parses
/// each packet exactly once and scans slots at struct level.
bool matches_parsed(const net::ParsedProbe& sent,
                    const net::ParsedReply& got) {
  if (sent.family != got.family) return false;
  if (got.is_echo_reply()) {
    if (!sent.is_echo_request()) return false;
    if (sent.family == net::Family::kIpv4) {
      return got.icmp.identifier == sent.icmp.identifier &&
             got.icmp.sequence == sent.icmp.sequence;
    }
    return got.icmp6.identifier == sent.icmp6.identifier &&
           got.icmp6.sequence == sent.icmp6.sequence;
  }
  if (sent.family == net::Family::kIpv4) {
    if (!got.quoted_ip) return false;
    if (got.quoted_ip->dst != sent.ip.dst) return false;
    if (sent.ip.protocol == net::IpProto::kUdp) {
      return got.quoted_udp && got.quoted_udp->src_port == sent.udp.src_port &&
             got.quoted_udp->dst_port == sent.udp.dst_port;
    }
    return got.quoted_icmp &&
           got.quoted_icmp->identifier == sent.icmp.identifier;
  }
  if (!got.quoted_ip6) return false;
  if (got.quoted_ip6->dst != sent.ip6.dst) return false;
  if (sent.ip6.next_header == net::IpProto::kUdp) {
    // The flow label is the Paris identifier on v6; the (constant) ports
    // guard against unrelated traffic towards the same destination.
    return got.quoted_ip6->flow_label == sent.ip6.flow_label &&
           got.quoted_udp && got.quoted_udp->src_port == sent.udp.src_port &&
           got.quoted_udp->dst_port == sent.udp.dst_port;
  }
  return got.quoted_icmp6 &&
         got.quoted_icmp6->identifier == sent.icmp6.identifier;
}

bool quoted_id_matches_parsed(const net::ParsedProbe& sent,
                              const net::ParsedReply& got) {
  if (got.is_echo_reply()) return true;  // identifier/sequence are exact
  if (sent.family == net::Family::kIpv4) {
    if (!got.quoted_ip) return false;
    return got.quoted_ip->identification == sent.ip.identification;
  }
  // v6 has no identification; the engine encodes the probe TTL in the
  // UDP length, which the quoted UDP header echoes back.
  if (!got.quoted_udp) return false;
  return got.quoted_udp->length == sent.udp.length;
}

}  // namespace

bool RawSocketNetwork::matches(std::span<const std::uint8_t> probe,
                               std::span<const std::uint8_t> reply) {
  try {
    return matches_parsed(net::parse_probe(probe), net::parse_reply(reply));
  } catch (const ParseError&) {
    return false;
  }
}

bool RawSocketNetwork::quoted_id_matches(std::span<const std::uint8_t> probe,
                                         std::span<const std::uint8_t> reply) {
  try {
    return quoted_id_matches_parsed(net::parse_probe(probe),
                                    net::parse_reply(reply));
  } catch (const ParseError&) {
    return false;
  }
}

void RawSocketNetwork::send_datagram(const net::ParsedProbe& probe,
                                     std::span<const std::uint8_t> datagram) {
  if (config_.family == net::Family::kIpv4) {
    sockaddr_in to{};
    to.sin_family = AF_INET;
    to.sin_addr.s_addr = htonl(probe.ip.dst.value());
    if (::sendto(send_fd_, datagram.data(), datagram.size(), 0,
                 reinterpret_cast<const sockaddr*>(&to), sizeof(to)) < 0) {
      throw SystemError(std::string("sendto: ") + std::strerror(errno));
    }
    return;
  }
  sockaddr_in6 to{};
  to.sin6_family = AF_INET6;
  std::memcpy(to.sin6_addr.s6_addr, probe.ip6.dst.bytes().data(), 16);
  if (::sendto(send_fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&to), sizeof(to)) < 0) {
    throw SystemError(std::string("sendto: ") + std::strerror(errno));
  }
}

std::vector<std::uint8_t> RawSocketNetwork::receive_datagram(
    const net::IpAddress& reply_dst) {
  std::uint8_t buffer[2048];
  if (config_.family == net::Family::kIpv4) {
    const ssize_t n = ::recv(recv_fd_, buffer, sizeof(buffer), 0);
    if (n <= 0) return {};
    return {buffer, buffer + n};
  }

  // v6: the kernel strips the IPv6 header; rebuild it from the peer
  // address and the ancillary hop limit so the shared parser sees a full
  // datagram. The kernel has already verified the ICMPv6 checksum, and
  // our reconstructed header cannot re-verify it (the true destination
  // may differ from the crafted source), so the checksum field is zeroed
  // — the parser's "unset, skip verification" convention.
  sockaddr_in6 from{};
  iovec iov{buffer, sizeof(buffer)};
  alignas(cmsghdr) std::uint8_t control[256];
  msghdr msg{};
  msg.msg_name = &from;
  msg.msg_namelen = sizeof(from);
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = control;
  msg.msg_controllen = sizeof(control);
  const ssize_t n = ::recvmsg(recv_fd_, &msg, 0);
  if (n <= 0) return {};

  int hop_limit = 64;
  for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
       cmsg = CMSG_NXTHDR(&msg, cmsg)) {
    if (cmsg->cmsg_level == IPPROTO_IPV6 &&
        cmsg->cmsg_type == IPV6_HOPLIMIT) {
      std::memcpy(&hop_limit, CMSG_DATA(cmsg), sizeof(int));
    }
  }

  if (n >= 4) {
    buffer[2] = 0;  // zero the ICMPv6 checksum (see above)
    buffer[3] = 0;
  }

  net::IpAddress::Bytes src_bytes{};
  std::memcpy(src_bytes.data(), from.sin6_addr.s6_addr, 16);
  net::Ipv6Header outer;
  outer.src = net::IpAddress::v6(src_bytes);
  outer.dst = reply_dst;
  outer.next_header = net::IpProto::kIcmpv6;
  outer.hop_limit = static_cast<std::uint8_t>(hop_limit);
  return outer.serialize({buffer, static_cast<std::size_t>(n)});
}

std::optional<Received> RawSocketNetwork::transact(
    std::span<const std::uint8_t> datagram, Nanos /*now*/) {
  const auto sent = net::parse_probe(datagram);
  const auto start = std::chrono::steady_clock::now();
  send_datagram(sent, datagram);

  while (true) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    if (elapsed >= config_.reply_timeout) return std::nullopt;

    pollfd pfd{recv_fd_, POLLIN, 0};
    const int ready = ::poll(
        &pfd, 1, static_cast<int>((config_.reply_timeout - elapsed).count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw SystemError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) return std::nullopt;

    const auto reply = receive_datagram(sent.src());
    if (reply.empty()) continue;
    if (!matches(datagram, reply)) continue;  // someone else's ICMP

    const auto rtt = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start);
    return Received{reply, static_cast<Nanos>(rtt.count())};
  }
}

std::vector<std::optional<Received>> RawSocketNetwork::transact_batch(
    std::span<const Datagram> batch) {
  std::vector<std::optional<Received>> replies(batch.size());
  if (batch.empty()) return replies;

  // Send the whole window back-to-back; keep each probe's parsed form so
  // the receive loop matches at struct level without re-parsing.
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::chrono::steady_clock::time_point> sent_at(batch.size());
  std::vector<net::ParsedProbe> probes;
  probes.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    probes.push_back(net::parse_probe(batch[i].bytes));
    sent_at[i] = std::chrono::steady_clock::now();
    send_datagram(probes[i], batch[i].bytes);
  }

  // One receive window for all of them: the per-probe timeouts overlap.
  std::size_t unanswered = batch.size();
  while (unanswered > 0) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - start);
    if (elapsed >= config_.reply_timeout) break;

    pollfd pfd{recv_fd_, POLLIN, 0};
    const int ready = ::poll(
        &pfd, 1, static_cast<int>((config_.reply_timeout - elapsed).count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw SystemError(std::string("poll: ") + std::strerror(errno));
    }
    if (ready == 0) break;

    const auto reply = receive_datagram(probes[0].src());
    if (reply.empty()) continue;
    net::ParsedReply got;
    try {
      got = net::parse_reply(reply);
    } catch (const ParseError&) {
      continue;  // not an ICMP shape we understand
    }
    // Two-tier slot attribution: flow matching alone cannot tell apart
    // two outstanding probes of the same flow at different TTLs, so
    // prefer the slot whose per-probe discriminator the reply quotes
    // (IPv4 identification / IPv6 UDP length); fall back to the first
    // flow match for routers that mangle the quoted header. A quoted
    // discriminator whose matching slots are ALL already answered is a
    // duplicated reply — drop it rather than loose-matching it onto a
    // different pending slot of the same flow. (The v4 IP-ID is unique
    // per probe; the v6 discriminator is per (flow, ttl), so duplicate
    // requests in one window share it — keep scanning for a pending
    // slot before declaring a duplicate.)
    std::ptrdiff_t exact = -1;
    std::ptrdiff_t loose = -1;
    bool exact_answered = false;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!matches_parsed(probes[i], got)) continue;
      if (quoted_id_matches_parsed(probes[i], got)) {
        if (!replies[i]) {
          exact = static_cast<std::ptrdiff_t>(i);
          break;
        }
        exact_answered = true;
        continue;
      }
      if (!replies[i] && loose < 0) loose = static_cast<std::ptrdiff_t>(i);
    }
    if (exact < 0 && exact_answered) continue;  // duplicated reply
    const std::ptrdiff_t hit = exact >= 0 ? exact : loose;
    if (hit < 0) continue;
    const auto rtt = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() -
        sent_at[static_cast<std::size_t>(hit)]);
    replies[static_cast<std::size_t>(hit)] =
        Received{reply, static_cast<Nanos>(rtt.count())};
    --unanswered;
  }
  return replies;
}

}  // namespace mmlpt::probe
