#include "probe/raw_socket_network.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/assert.h"
#include "common/error.h"
#include "net/packet.h"

// Linux < 4.15 headers lack IPV6_HDRINCL; the constant is stable ABI.
#ifndef IPV6_HDRINCL
#define IPV6_HDRINCL 36
#endif

namespace mmlpt::probe {

RawSocketNetwork::RawSocketNetwork(Config config) : config_(config) {
  const bool v6 = config_.family == net::Family::kIpv6;
  const int domain = v6 ? AF_INET6 : AF_INET;
  send_fd_ = ::socket(domain, SOCK_RAW, IPPROTO_RAW);
  if (send_fd_ < 0) {
    throw SystemError(std::string("raw send socket: ") + std::strerror(errno) +
                      " (CAP_NET_RAW required)");
  }
  const int on = 1;
  const int level = v6 ? IPPROTO_IPV6 : IPPROTO_IP;
  const int option = v6 ? IPV6_HDRINCL : IP_HDRINCL;
  if (::setsockopt(send_fd_, level, option, &on, sizeof(on)) < 0) {
    ::close(send_fd_);
    throw SystemError(std::string(v6 ? "IPV6_HDRINCL: " : "IP_HDRINCL: ") +
                      std::strerror(errno));
  }
  recv_fd_ = ::socket(domain, SOCK_RAW,
                      v6 ? static_cast<int>(IPPROTO_ICMPV6)
                         : static_cast<int>(IPPROTO_ICMP));
  if (recv_fd_ < 0) {
    ::close(send_fd_);
    throw SystemError(std::string("raw recv socket: ") +
                      std::strerror(errno));
  }
  if (v6) {
    // ICMPv6 raw sockets deliver the message without its IPv6 header;
    // ask for the hop limit so the reconstructed header carries the
    // fingerprint signal.
    if (::setsockopt(recv_fd_, IPPROTO_IPV6, IPV6_RECVHOPLIMIT, &on,
                     sizeof(on)) < 0) {
      ::close(send_fd_);
      ::close(recv_fd_);
      throw SystemError(std::string("IPV6_RECVHOPLIMIT: ") +
                        std::strerror(errno));
    }
  }
}

RawSocketNetwork::~RawSocketNetwork() {
  if (send_fd_ >= 0) ::close(send_fd_);
  if (recv_fd_ >= 0) ::close(recv_fd_);
}

namespace {

/// True when `got` is the ICMP(v6) answer to `sent` (quoted ports / flow
/// label match, or echo identifier/sequence match). Struct level — the
/// receive loop parses each packet exactly once.
bool matches_parsed(const net::ParsedProbe& sent,
                    const net::ParsedReply& got) {
  if (sent.family != got.family) return false;
  if (got.is_echo_reply()) {
    if (!sent.is_echo_request()) return false;
    if (sent.family == net::Family::kIpv4) {
      return got.icmp.identifier == sent.icmp.identifier &&
             got.icmp.sequence == sent.icmp.sequence;
    }
    return got.icmp6.identifier == sent.icmp6.identifier &&
           got.icmp6.sequence == sent.icmp6.sequence;
  }
  if (sent.family == net::Family::kIpv4) {
    if (!got.quoted_ip) return false;
    if (got.quoted_ip->dst != sent.ip.dst) return false;
    if (sent.ip.protocol == net::IpProto::kUdp) {
      return got.quoted_udp && got.quoted_udp->src_port == sent.udp.src_port &&
             got.quoted_udp->dst_port == sent.udp.dst_port;
    }
    return got.quoted_icmp &&
           got.quoted_icmp->identifier == sent.icmp.identifier;
  }
  if (!got.quoted_ip6) return false;
  if (got.quoted_ip6->dst != sent.ip6.dst) return false;
  if (sent.ip6.next_header == net::IpProto::kUdp) {
    // The flow label is the Paris identifier on v6; the (constant) ports
    // guard against unrelated traffic towards the same destination.
    return got.quoted_ip6->flow_label == sent.ip6.flow_label &&
           got.quoted_udp && got.quoted_udp->src_port == sent.udp.src_port &&
           got.quoted_udp->dst_port == sent.udp.dst_port;
  }
  return got.quoted_icmp6 &&
         got.quoted_icmp6->identifier == sent.icmp6.identifier;
}

/// True when the reply quotes the probe's per-probe discriminator that
/// matches_parsed() lacks: the IPv4 identification, or on IPv6 the UDP
/// length (the engine encodes the TTL there — v6 has no identification).
/// Two probes of the SAME flow at different TTLs carry identical flow
/// fields, so in-flight windows need this to attribute each
/// Time-Exceeded to the right slot. (Echo replies are already exact per
/// identifier/sequence.)
bool quoted_id_matches_parsed(const net::ParsedProbe& sent,
                              const net::ParsedReply& got) {
  if (got.is_echo_reply()) return true;  // identifier/sequence are exact
  if (sent.family == net::Family::kIpv4) {
    if (!got.quoted_ip) return false;
    return got.quoted_ip->identification == sent.ip.identification;
  }
  // v6 has no identification; the engine encodes the probe TTL in the
  // UDP length, which the quoted UDP header echoes back.
  if (!got.quoted_udp) return false;
  return got.quoted_udp->length == sent.udp.length;
}

}  // namespace

void RawSocketNetwork::send_datagram(const net::ParsedProbe& probe,
                                     std::span<const std::uint8_t> datagram) {
  if (config_.family == net::Family::kIpv4) {
    sockaddr_in to{};
    to.sin_family = AF_INET;
    to.sin_addr.s_addr = htonl(probe.ip.dst.value());
    if (::sendto(send_fd_, datagram.data(), datagram.size(), 0,
                 reinterpret_cast<const sockaddr*>(&to), sizeof(to)) < 0) {
      throw SystemError(std::string("sendto: ") + std::strerror(errno));
    }
    return;
  }
  sockaddr_in6 to{};
  to.sin6_family = AF_INET6;
  std::memcpy(to.sin6_addr.s6_addr, probe.ip6.dst.bytes().data(), 16);
  if (::sendto(send_fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&to), sizeof(to)) < 0) {
    throw SystemError(std::string("sendto: ") + std::strerror(errno));
  }
}

std::vector<std::uint8_t> RawSocketNetwork::receive_datagram(
    const net::IpAddress& reply_dst) {
  std::uint8_t buffer[2048];
  if (config_.family == net::Family::kIpv4) {
    const ssize_t n = ::recv(recv_fd_, buffer, sizeof(buffer), 0);
    if (n <= 0) return {};
    return {buffer, buffer + n};
  }

  // v6: the kernel strips the IPv6 header; rebuild it from the peer
  // address and the ancillary hop limit so the shared parser sees a full
  // datagram. The kernel has already verified the ICMPv6 checksum, and
  // our reconstructed header cannot re-verify it (the true destination
  // may differ from the crafted source), so the checksum field is zeroed
  // — the parser's "unset, skip verification" convention.
  sockaddr_in6 from{};
  iovec iov{buffer, sizeof(buffer)};
  alignas(cmsghdr) std::uint8_t control[256];
  msghdr msg{};
  msg.msg_name = &from;
  msg.msg_namelen = sizeof(from);
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = control;
  msg.msg_controllen = sizeof(control);
  const ssize_t n = ::recvmsg(recv_fd_, &msg, 0);
  if (n <= 0) return {};

  int hop_limit = 64;
  for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
       cmsg = CMSG_NXTHDR(&msg, cmsg)) {
    if (cmsg->cmsg_level == IPPROTO_IPV6 &&
        cmsg->cmsg_type == IPV6_HOPLIMIT) {
      std::memcpy(&hop_limit, CMSG_DATA(cmsg), sizeof(int));
    }
  }

  if (n >= 4) {
    buffer[2] = 0;  // zero the ICMPv6 checksum (see above)
    buffer[3] = 0;
  }

  net::IpAddress::Bytes src_bytes{};
  std::memcpy(src_bytes.data(), from.sin6_addr.s6_addr, 16);
  net::Ipv6Header outer;
  outer.src = net::IpAddress::v6(src_bytes);
  outer.dst = reply_dst;
  outer.next_header = net::IpProto::kIcmpv6;
  outer.hop_limit = static_cast<std::uint8_t>(hop_limit);
  return outer.serialize({buffer, static_cast<std::size_t>(n)});
}

void RawSocketNetwork::submit(std::span<const Datagram> window, Ticket ticket,
                              const SubmitOptions& options) {
  const auto now = Clock::now();
  const auto budget =
      options.deadline
          ? std::chrono::nanoseconds(static_cast<std::int64_t>(*options.deadline))
          : std::chrono::nanoseconds(config_.reply_timeout);
  pending_.reserve(pending_.size() + window.size());
  for (std::size_t slot = 0; slot < window.size(); ++slot) {
    PendingSlot entry;
    entry.ticket = ticket;
    entry.slot = slot;
    entry.probe = net::parse_probe(window[slot].bytes);
    entry.sent_at = Clock::now();
    entry.deadline = now + budget;
    try {
      send_datagram(entry.probe, window[slot].bytes);
    } catch (const SystemError&) {
      // A failed send behaves like a lost probe: resolve the slot
      // unanswered instead of throwing with part of the window already
      // on the wire — a partially-submitted ticket would leave the
      // queue permanently out of sync with its caller's drain loop.
      Completion completion;
      completion.ticket = ticket;
      completion.slot = slot;
      ready_.push_back(std::move(completion));
      remember_resolved(std::move(entry.probe));
      continue;
    }
    pending_.push_back(std::move(entry));
  }
}

void RawSocketNetwork::remember_resolved(net::ParsedProbe probe) {
  resolved_.push_back(ResolvedSlot{std::move(probe)});
  while (resolved_.size() > kResolvedMemory) resolved_.pop_front();
}

void RawSocketNetwork::expire_slots(Clock::time_point now) {
  for (std::size_t i = 0; i < pending_.size();) {
    if (pending_[i].deadline <= now) {
      Completion completion;
      completion.ticket = pending_[i].ticket;
      completion.slot = pending_[i].slot;
      ready_.push_back(std::move(completion));
      // An expired slot's reply may still arrive; remember the probe so
      // the late reply is dropped, not loose-matched onto another slot.
      remember_resolved(std::move(pending_[i].probe));
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void RawSocketNetwork::attribute_reply(const net::ParsedReply& got,
                                       std::vector<std::uint8_t> reply,
                                       Clock::time_point now) {
  // Two-tier slot attribution: flow matching alone cannot tell apart two
  // outstanding probes of the same flow at different TTLs, so prefer the
  // slot whose per-probe discriminator the reply quotes (IPv4
  // identification / IPv6 UDP length); fall back to the first flow match
  // for routers that mangle the quoted header. A quoted discriminator
  // whose matching slots are ALL already answered is a duplicated reply
  // — drop it rather than loose-matching it onto a different pending
  // slot of the same flow. (The v4 IP-ID is unique per probe; the v6
  // discriminator is per (flow, ttl), so duplicate requests in one
  // window share it — keep scanning for a pending slot before declaring
  // a duplicate.) The scan covers every in-flight ticket: one receive
  // loop serves all tracers multiplexed onto this socket pair.
  std::ptrdiff_t exact = -1;
  std::ptrdiff_t loose = -1;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (!matches_parsed(pending_[i].probe, got)) continue;
    if (quoted_id_matches_parsed(pending_[i].probe, got)) {
      exact = static_cast<std::ptrdiff_t>(i);
      break;
    }
    if (loose < 0) loose = static_cast<std::ptrdiff_t>(i);
  }
  if (exact < 0) {
    for (const auto& resolved : resolved_) {
      if (matches_parsed(resolved.probe, got) &&
          quoted_id_matches_parsed(resolved.probe, got)) {
        return;  // late or duplicated reply to a resolved probe
      }
    }
  }
  const std::ptrdiff_t hit = exact >= 0 ? exact : loose;
  if (hit < 0) return;  // someone else's ICMP

  auto& slot = pending_[static_cast<std::size_t>(hit)];
  const auto rtt =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - slot.sent_at);
  Completion completion;
  completion.ticket = slot.ticket;
  completion.slot = slot.slot;
  completion.reply =
      Received{std::move(reply), static_cast<Nanos>(rtt.count())};
  ready_.push_back(std::move(completion));
  remember_resolved(std::move(slot.probe));
  pending_.erase(pending_.begin() + hit);
}

std::vector<Completion> RawSocketNetwork::poll_completions() {
  while (ready_.empty() && !pending_.empty()) {
    // Recompute the remaining budget from the monotonic clock on EVERY
    // wakeup — EINTR, a stray packet, or poll()'s millisecond-truncated
    // timeout must not shorten (or extend) any ticket's deadline.
    const auto now = Clock::now();
    expire_slots(now);
    if (!ready_.empty()) break;

    auto earliest = pending_.front().deadline;
    for (const auto& slot : pending_) {
      earliest = std::min(earliest, slot.deadline);
    }

    pollfd pfd{recv_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, poll_budget_ms(now, earliest));
    if (rc < 0) {
      if (errno == EINTR) continue;  // loop top re-derives the budget
      throw SystemError(std::string("poll: ") + std::strerror(errno));
    }
    if (rc == 0) continue;  // maybe expired: the loop top decides

    auto reply = receive_datagram(pending_.front().probe.src());
    if (reply.empty()) continue;
    net::ParsedReply got;
    try {
      got = net::parse_reply(reply);
    } catch (const ParseError&) {
      continue;  // not an ICMP shape we understand
    }
    attribute_reply(got, std::move(reply), Clock::now());
  }
  auto completions = std::move(ready_);
  ready_.clear();
  return completions;
}

void RawSocketNetwork::cancel(Ticket ticket) {
  for (std::size_t i = 0; i < pending_.size();) {
    if (pending_[i].ticket == ticket) {
      Completion completion;
      completion.ticket = ticket;
      completion.slot = pending_[i].slot;
      completion.canceled = true;
      ready_.push_back(std::move(completion));
      remember_resolved(std::move(pending_[i].probe));
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

std::size_t RawSocketNetwork::pending() const {
  return pending_.size() + ready_.size();
}

std::optional<Received> RawSocketNetwork::transact(
    std::span<const std::uint8_t> datagram, Nanos /*now*/) {
  // The serial path is the queue path with a one-slot window; it must
  // not interleave with in-flight submissions (their completions would
  // be misrouted).
  MMLPT_EXPECTS(pending() == 0);
  const Datagram window[] = {Datagram{{datagram.begin(), datagram.end()}, 0}};
  submit(window, /*ticket=*/0);
  std::optional<Received> reply;
  std::size_t outstanding = 1;
  while (outstanding > 0) {
    auto completions = poll_completions();
    MMLPT_ASSERT(!completions.empty());
    for (auto& completion : completions) {
      reply = std::move(completion.reply);
      --outstanding;
    }
  }
  return reply;
}

}  // namespace mmlpt::probe
