// Network backend that feeds probes to an in-process Fakeroute simulator.
#ifndef MMLPT_PROBE_SIMULATED_NETWORK_H
#define MMLPT_PROBE_SIMULATED_NETWORK_H

#include "fakeroute/simulator.h"
#include "probe/network.h"

namespace mmlpt::probe {

class SimulatedNetwork final : public Network {
 public:
  /// The simulator must outlive this adapter.
  explicit SimulatedNetwork(fakeroute::Simulator& simulator)
      : simulator_(&simulator) {}

  [[nodiscard]] std::optional<Received> transact(
      std::span<const std::uint8_t> datagram, Nanos now) override;

  /// Queue path: the simulator is a sequential machine with no real
  /// latency, so every slot resolves AT submit() — one virtual-time step
  /// per datagram, in submission order, deterministic and bit-identical
  /// to a serial loop of transact() calls. poll_completions() merely
  /// hands the resolved slots over; per-ticket deadlines never trigger.
  void submit(std::span<const Datagram> window, Ticket ticket,
              const SubmitOptions& options) override;
  using Network::submit;
  [[nodiscard]] std::vector<Completion> poll_completions() override;
  void cancel(Ticket ticket) override;
  [[nodiscard]] std::size_t pending() const override;

 private:
  fakeroute::Simulator* simulator_;
  std::vector<Completion> ready_;
};

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_SIMULATED_NETWORK_H
