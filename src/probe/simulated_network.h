// Network backend that feeds probes to an in-process Fakeroute simulator.
#ifndef MMLPT_PROBE_SIMULATED_NETWORK_H
#define MMLPT_PROBE_SIMULATED_NETWORK_H

#include "fakeroute/simulator.h"
#include "probe/network.h"

namespace mmlpt::probe {

class SimulatedNetwork final : public Network {
 public:
  /// The simulator must outlive this adapter.
  explicit SimulatedNetwork(fakeroute::Simulator& simulator)
      : simulator_(&simulator) {}

  [[nodiscard]] std::optional<Received> transact(
      std::span<const std::uint8_t> datagram, Nanos now) override;

  /// Batched path: hands the window to the simulator in send order, one
  /// virtual-time step per datagram. Deterministic and bit-identical to
  /// the serial fallback — the simulator is a sequential machine — but
  /// skips the per-probe virtual dispatch.
  [[nodiscard]] std::vector<std::optional<Received>> transact_batch(
      std::span<const Datagram> batch) override;

 private:
  fakeroute::Simulator* simulator_;
};

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_SIMULATED_NETWORK_H
