// The transport seam: an asynchronous submit/completion queue in the
// io_uring mould. A caller submits a window of probe datagrams under a
// ticket, then polls for completions; replies surface as they arrive (or
// as their deadline expires), in whatever order the network produces
// them, tagged with (ticket, slot) so concurrent submitters can be
// demultiplexed over one shared transport.
//
// This is the primary probing interface: ProbeEngine drives it directly,
// the fleet merger (orchestrator::FleetTransportHub) multiplexes many
// tracers' windows onto one backend through it, and the blocking
// Network::transact_batch of the earlier pipeline survives only as a
// compatibility shim layered on top (see network.h).
//
// Contract:
//   * submit() ships `window` as one in-flight batch. Tickets are chosen
//     by the caller and must be unique among that queue's in-flight
//     tickets; slots are indices into the submitted window.
//   * poll_completions() blocks until at least one pending slot resolves
//     and returns everything available; it returns empty ONLY when
//     nothing is pending. Every submitted slot resolves exactly once:
//     with a reply, unanswered (deadline), or canceled.
//   * cancel(ticket) resolves that ticket's still-pending slots as
//     canceled completions, surfaced by the next poll_completions().
//   * Queues are single-threaded objects unless documented otherwise;
//     cross-thread merging is the hub's job, not the backend's.
#ifndef MMLPT_PROBE_TRANSPORT_QUEUE_H
#define MMLPT_PROBE_TRANSPORT_QUEUE_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mmlpt::probe {

using Nanos = std::uint64_t;

struct Received {
  std::vector<std::uint8_t> datagram;
  Nanos rtt = 0;
};

/// One element of a probe window: the raw bytes plus the (virtual or
/// wall-clock) instant they are sent.
struct Datagram {
  std::vector<std::uint8_t> bytes;
  Nanos at = 0;
};

/// Caller-chosen identifier for one submitted window; unique among the
/// queue's in-flight tickets.
using Ticket = std::uint64_t;

/// One resolved slot of a submitted window.
struct Completion {
  Ticket ticket = 0;
  std::size_t slot = 0;           ///< index into the submitted window
  std::optional<Received> reply;  ///< nullopt: unanswered or canceled
  bool canceled = false;          ///< resolved by cancel(), not the wire
};

struct SubmitOptions {
  /// Per-ticket reply deadline in nanoseconds (wall clock on real
  /// transports): unanswered slots resolve once it elapses. nullopt uses
  /// the backend's default (RawSocketNetwork: Config::reply_timeout;
  /// simulated backends resolve instantly and never wait).
  std::optional<Nanos> deadline;
};

class TransportQueue {
 public:
  virtual ~TransportQueue() = default;

  /// Ship `window` as one in-flight batch identified by `ticket`. May
  /// block for pacing (rate limiting), never for replies.
  virtual void submit(std::span<const Datagram> window, Ticket ticket,
                      const SubmitOptions& options) = 0;
  void submit(std::span<const Datagram> window, Ticket ticket) {
    submit(window, ticket, SubmitOptions{});
  }

  /// Block until at least one pending slot resolves; return every
  /// completion available. Empty only when nothing is pending.
  [[nodiscard]] virtual std::vector<Completion> poll_completions() = 0;

  /// Resolve all still-pending slots of `ticket` as canceled; their
  /// completions surface on the next poll_completions(). Unknown or
  /// fully-resolved tickets are a no-op.
  virtual void cancel(Ticket ticket) = 0;

  /// Submitted slots whose completions poll_completions() has not yet
  /// returned.
  [[nodiscard]] virtual std::size_t pending() const = 0;
};

}  // namespace mmlpt::probe

#endif  // MMLPT_PROBE_TRANSPORT_QUEUE_H
