// Persistent on-disk topology store backing the fleet stop set: what a
// survey discovered this run, durable for the next one, so a re-survey
// starts warm and Doubletree stopping has a frozen epoch to consult.
//
// File format (versioned binary, append-friendly, CRC-checked):
//
//   header:  u32 magic "MTPS"   u32 version
//   block*:  u32 payload_len    u32 crc32(payload)   payload bytes
//
// Every integer is little-endian. A block's payload is one
// TopologySnapshot delta:
//
//   u32 hop_count    { u8 family(4|6)  16 addr bytes  u16 distance }*
//   u32 dest_count   { u8 family  16 addr bytes  u16 distance  u64 probes }*
//
// Appends are a single O_APPEND write(2) (header included when the file
// is empty), giving single-writer atomicity: a reader — or a crash —
// never observes a half-interleaved block, only a possibly truncated
// tail. load() therefore keeps every block whose length and CRC check
// out and stops at the first damaged one (truncated_tail reports it);
// only a bad header (wrong magic or version) is a hard error, because it
// means the file is not ours or a schema we cannot decode.
#ifndef MMLPT_STORE_TOPOLOGY_STORE_H
#define MMLPT_STORE_TOPOLOGY_STORE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/stop_set.h"
#include "net/ip_address.h"

namespace mmlpt::store {

/// One confirmed (interface, distance) pair.
struct HopRecord {
  net::IpAddress addr;
  int distance = 0;

  friend bool operator==(const HopRecord&, const HopRecord&) = default;
  friend auto operator<=>(const HopRecord&, const HopRecord&) = default;
};

/// A destination's full-trace record, keyed by its address.
struct DestinationEntry {
  net::IpAddress addr;
  core::DestinationRecord record;

  friend bool operator==(const DestinationEntry&,
                         const DestinationEntry&) = default;
};

/// A set of discoveries: a whole store when loaded, a run's delta when
/// appended.
struct TopologySnapshot {
  std::vector<HopRecord> hops;
  std::vector<DestinationEntry> destinations;

  [[nodiscard]] bool empty() const noexcept {
    return hops.empty() && destinations.empty();
  }
};

/// CRC-32 (IEEE 802.3, reflected) — the block checksum.
[[nodiscard]] std::uint32_t crc32(std::string_view data);

/// Serialize / parse one block payload. decode throws ParseError on any
/// structural violation (bad family tag, short buffer, trailing bytes).
[[nodiscard]] std::string encode_snapshot(const TopologySnapshot& snapshot);
[[nodiscard]] TopologySnapshot decode_snapshot(std::string_view payload);

class TopologyStore {
 public:
  static constexpr std::uint32_t kMagic = 0x5350544DU;  // "MTPS" LE
  static constexpr std::uint32_t kVersion = 1;

  struct LoadResult {
    TopologySnapshot snapshot;  ///< union of every intact block
    std::size_t blocks = 0;     ///< intact blocks decoded
    /// Damaged or half-written data followed the last intact block; it
    /// was ignored (the valid prefix loaded fine).
    bool truncated_tail = false;
  };

  /// Load a store file. A missing file is an empty store (first run);
  /// wrong magic or version throws TopologyError; a damaged tail is
  /// recovered from by keeping the valid prefix.
  [[nodiscard]] static LoadResult load(const std::string& path);

  /// Append one delta block (creating file + header when absent) as a
  /// single O_APPEND write. Empty deltas are skipped. Throws SystemError
  /// on I/O failure and TopologyError when the existing file's header is
  /// not ours (appending would corrupt someone else's data).
  ///
  /// Concurrency: appends to an EXISTING file are atomic with respect to
  /// each other (one write(2) each, kernel-serialized under O_APPEND).
  /// Header creation is the one non-concurrent step — racing first
  /// appends on a missing file may duplicate it. Sessions load the store
  /// before their single append-at-exit, so this never arises in normal
  /// use.
  static void append(const std::string& path,
                     const TopologySnapshot& delta);
};

}  // namespace mmlpt::store

#endif  // MMLPT_STORE_TOPOLOGY_STORE_H
