#include "store/topology_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace mmlpt::store {

namespace {

// ---- little-endian primitives -------------------------------------------

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

/// Bounds-checked little-endian reader over a block payload.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() { return take(1)[0]; }
  [[nodiscard]] std::uint16_t u16() {
    const auto* b = take(2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }
  [[nodiscard]] std::uint32_t u32() {
    const auto* b = take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    const auto* b = take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    return v;
  }
  [[nodiscard]] net::IpAddress addr() {
    const auto family = u8();
    if (family != 4 && family != 6) {
      throw ParseError("topology store: bad address family tag");
    }
    const auto* b = take(16);
    if (family == 4) {
      return net::IpAddress(b[0], b[1], b[2], b[3]);
    }
    net::IpAddress::Bytes bytes;
    std::memcpy(bytes.data(), b, bytes.size());
    return net::IpAddress::v6(bytes);
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

 private:
  const std::uint8_t* take(std::size_t n) {
    if (data_.size() - pos_ < n) {
      throw ParseError("topology store: short block payload");
    }
    const auto* p =
        reinterpret_cast<const std::uint8_t*>(data_.data()) + pos_;
    pos_ += n;
    return p;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

void put_addr(std::string& out, const net::IpAddress& addr) {
  out.push_back(addr.family() == net::Family::kIpv6 ? 6 : 4);
  const auto& bytes = addr.bytes();
  out.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

std::string header_bytes() {
  std::string header;
  put_u32(header, TopologyStore::kMagic);
  put_u32(header, TopologyStore::kVersion);
  return header;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw SystemError("topology store: " + what + ": " +
                    std::strerror(errno));
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  // IEEE 802.3 reflected polynomial, bytewise table built on first use.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFU;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

std::string encode_snapshot(const TopologySnapshot& snapshot) {
  std::string payload;
  put_u32(payload, static_cast<std::uint32_t>(snapshot.hops.size()));
  for (const auto& hop : snapshot.hops) {
    put_addr(payload, hop.addr);
    put_u16(payload, static_cast<std::uint16_t>(hop.distance));
  }
  put_u32(payload, static_cast<std::uint32_t>(snapshot.destinations.size()));
  for (const auto& dest : snapshot.destinations) {
    put_addr(payload, dest.addr);
    put_u16(payload, static_cast<std::uint16_t>(dest.record.distance));
    put_u64(payload, dest.record.probes);
  }
  return payload;
}

TopologySnapshot decode_snapshot(std::string_view payload) {
  Reader reader(payload);
  TopologySnapshot snapshot;
  const auto hop_count = reader.u32();
  snapshot.hops.reserve(hop_count);
  for (std::uint32_t i = 0; i < hop_count; ++i) {
    HopRecord hop;
    hop.addr = reader.addr();
    hop.distance = reader.u16();
    snapshot.hops.push_back(hop);
  }
  const auto dest_count = reader.u32();
  snapshot.destinations.reserve(dest_count);
  for (std::uint32_t i = 0; i < dest_count; ++i) {
    DestinationEntry dest;
    dest.addr = reader.addr();
    dest.record.distance = reader.u16();
    dest.record.probes = reader.u64();
    snapshot.destinations.push_back(dest);
  }
  if (!reader.done()) {
    throw ParseError("topology store: trailing bytes in block payload");
  }
  return snapshot;
}

TopologyStore::LoadResult TopologyStore::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  LoadResult result;
  if (!in) return result;  // missing file: an empty store (first run)
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();

  if (data.size() < 8) {
    // A half-written header (crash during the very first append): there
    // is no valid prefix to keep, but the file is recoverable garbage,
    // not a foreign schema.
    result.truncated_tail = !data.empty();
    return result;
  }
  Reader header(std::string_view(data).substr(0, 8));
  if (header.u32() != kMagic) {
    throw TopologyError("topology store: bad magic in " + path);
  }
  if (const auto version = header.u32(); version != kVersion) {
    throw TopologyError("topology store: unsupported version " +
                        std::to_string(version) + " in " + path);
  }

  std::size_t pos = 8;
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      result.truncated_tail = true;  // half-written block header
      break;
    }
    Reader block_header(std::string_view(data).substr(pos, 8));
    const auto length = block_header.u32();
    const auto checksum = block_header.u32();
    if (data.size() - pos - 8 < length) {
      result.truncated_tail = true;  // payload cut short
      break;
    }
    const auto payload = std::string_view(data).substr(pos + 8, length);
    if (crc32(payload) != checksum) {
      result.truncated_tail = true;  // corrupt block: stop at valid prefix
      break;
    }
    TopologySnapshot block;
    try {
      block = decode_snapshot(payload);
    } catch (const ParseError&) {
      result.truncated_tail = true;  // CRC collided with garbage
      break;
    }
    result.snapshot.hops.insert(result.snapshot.hops.end(),
                                block.hops.begin(), block.hops.end());
    result.snapshot.destinations.insert(result.snapshot.destinations.end(),
                                        block.destinations.begin(),
                                        block.destinations.end());
    ++result.blocks;
    pos += 8 + length;
  }
  return result;
}

void TopologyStore::append(const std::string& path,
                           const TopologySnapshot& delta) {
  if (delta.empty()) return;

  const std::string payload = encode_snapshot(delta);
  std::string block;
  put_u32(block, static_cast<std::uint32_t>(payload.size()));
  put_u32(block, crc32(payload));
  block += payload;

  // O_RDWR so the existing header can be verified before appending;
  // O_APPEND so the block lands atomically at the end whatever other
  // readers are doing.
  const int fd = ::open(path.c_str(), O_RDWR | O_APPEND | O_CREAT, 0644);
  if (fd < 0) throw_errno("cannot open " + path);
  struct FdGuard {
    int fd;
    ~FdGuard() { ::close(fd); }
  } guard{fd};

  struct stat st{};
  if (::fstat(fd, &st) != 0) throw_errno("fstat " + path);
  std::string out;
  if (st.st_size == 0) {
    out = header_bytes() + block;  // first append writes the header too
  } else {
    char existing[8];
    ssize_t n = ::pread(fd, existing, sizeof existing, 0);
    if (n < 0) throw_errno("read header of " + path);
    const auto expected = header_bytes();
    if (static_cast<std::size_t>(n) < expected.size() ||
        std::memcmp(existing, expected.data(), expected.size()) != 0) {
      throw TopologyError(
          "topology store: refusing to append to foreign file " + path);
    }
    out = std::move(block);
  }

  // One write(2) per append: single-writer atomicity (a concurrent
  // reader sees whole blocks or a clean truncation, never interleaving).
  std::size_t written = 0;
  while (written < out.size()) {
    const ssize_t n =
        ::write(fd, out.data() + written, out.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("append to " + path);
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace mmlpt::store
