#include "fakeroute/failure.h"

#include <vector>

#include "common/assert.h"

namespace mmlpt::fakeroute {

double vertex_failure_probability(int successor_count,
                                  std::span<const int> nk) {
  if (successor_count <= 1) return 0.0;
  const int K = successor_count;
  MMLPT_EXPECTS(static_cast<int>(nk.size()) > K - 1);
  for (int k = 1; k < K; ++k) MMLPT_EXPECTS(nk[k] > 0);

  // dp[k][n]: probability the process is alive with k distinct successors
  // found after n probes. The first probe always finds one.
  const int max_n = nk[K - 1];
  std::vector<std::vector<double>> dp(
      static_cast<std::size_t>(K),
      std::vector<double>(static_cast<std::size_t>(max_n) + 2, 0.0));
  dp[1][1] = 1.0;

  double fail = 0.0;
  for (int n = 1; n <= max_n; ++n) {
    for (int k = 1; k < K; ++k) {
      const double p = dp[k][n];
      if (p == 0.0) continue;
      if (n >= nk[k]) {
        fail += p;  // stopping point reached with successors missing
        continue;
      }
      const double find_new =
          static_cast<double>(K - k) / static_cast<double>(K);
      if (k + 1 < K) {
        dp[k + 1][n + 1] += p * find_new;
      }
      // k+1 == K would be success; nothing to accumulate.
      dp[k][n + 1] += p * (1.0 - find_new);
    }
  }
  return fail;
}

double topology_failure_probability(const topo::MultipathGraph& graph,
                                    std::span<const int> nk) {
  double success = 1.0;
  for (topo::VertexId v = 0; v < graph.vertex_count(); ++v) {
    const auto K = static_cast<int>(graph.out_degree(v));
    if (K >= 2) {
      success *= 1.0 - vertex_failure_probability(K, nk);
    }
  }
  return 1.0 - success;
}

}  // namespace mmlpt::fakeroute
