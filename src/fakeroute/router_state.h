// Runtime state of one simulated router: IP-ID counters, ICMP rate
// limiting, and reply-field synthesis according to its RouterSpec.
#ifndef MMLPT_FAKEROUTE_ROUTER_STATE_H
#define MMLPT_FAKEROUTE_ROUTER_STATE_H

#include <cstdint>
#include <unordered_map>

#include "common/rng.h"
#include "net/ip_address.h"
#include "topology/ground_truth.h"

namespace mmlpt::fakeroute {

/// Virtual time in nanoseconds.
using Nanos = std::uint64_t;
inline constexpr Nanos kNanosPerSecond = 1'000'000'000ULL;

/// Token-bucket ICMP rate limiter.
class RateLimiter {
 public:
  RateLimiter(double replies_per_second, int burst)
      : rate_(replies_per_second), tokens_(static_cast<double>(burst)),
        burst_(static_cast<double>(burst)) {}

  /// Try to emit one reply at virtual time `now`.
  [[nodiscard]] bool allow(Nanos now);

 private:
  double rate_;
  double tokens_;
  double burst_;
  Nanos last_ = 0;
  bool initialized_ = false;
};

/// Which kind of reply an IP-ID is being generated for; per-interface
/// counters apply to indirect (error) replies only — routers commonly use
/// a router-wide counter for echo replies (the Sec. 4.2 explanation for
/// reject-indirect / accept-direct alias sets).
enum class ReplyKind : std::uint8_t { kError, kEcho };

class RouterState {
 public:
  RouterState(const topo::RouterSpec& spec, Rng rng)
      : spec_(&spec), rng_(std::move(rng)) {}

  /// Produce the IP-ID for a reply emitted at `now` from `interface` in
  /// response to a probe carrying `probe_ip_id`.
  [[nodiscard]] std::uint16_t next_ip_id(net::Ipv4Address interface,
                                         Nanos now, std::uint16_t probe_ip_id,
                                         ReplyKind kind);

  [[nodiscard]] const topo::RouterSpec& spec() const noexcept {
    return *spec_;
  }

 private:
  struct Counter {
    double value = 0.0;
    Nanos last = 0;
    bool initialized = false;
  };

  [[nodiscard]] std::uint16_t advance(Counter& counter, Nanos now);

  const topo::RouterSpec* spec_;
  Rng rng_;
  Counter shared_;
  std::unordered_map<net::Ipv4Address, Counter> per_interface_;
};

}  // namespace mmlpt::fakeroute

#endif  // MMLPT_FAKEROUTE_ROUTER_STATE_H
