#include "fakeroute/router_state.h"

#include <cmath>

namespace mmlpt::fakeroute {

bool RateLimiter::allow(Nanos now) {
  if (!initialized_) {
    initialized_ = true;
    last_ = now;
  }
  const double dt =
      static_cast<double>(now - last_) / static_cast<double>(kNanosPerSecond);
  tokens_ = std::min(burst_, tokens_ + rate_ * dt);
  last_ = now;
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

std::uint16_t RouterState::advance(Counter& counter, Nanos now) {
  if (!counter.initialized) {
    counter.initialized = true;
    counter.last = now;
    counter.value = static_cast<double>(rng_.uniform(0, 0xFFFF));
  }
  const double dt = static_cast<double>(now - counter.last) /
                    static_cast<double>(kNanosPerSecond);
  counter.value += spec_->ip_id_velocity * dt;
  counter.last = now;
  const auto id = static_cast<std::uint16_t>(
      static_cast<std::uint64_t>(counter.value) & 0xFFFF);
  counter.value += 1.0;  // this reply consumes one ID
  return id;
}

std::uint16_t RouterState::next_ip_id(net::Ipv4Address interface, Nanos now,
                                      std::uint16_t probe_ip_id,
                                      ReplyKind kind) {
  switch (spec_->ip_id_policy) {
    case topo::IpIdPolicy::kSharedCounter:
      return advance(shared_, now);
    case topo::IpIdPolicy::kPerInterface:
      // Per-interface counters for error replies; router-wide for echo
      // replies (see header comment).
      if (kind == ReplyKind::kError) {
        return advance(per_interface_[interface], now);
      }
      return advance(shared_, now);
    case topo::IpIdPolicy::kConstantZero:
      return 0;
    case topo::IpIdPolicy::kZeroErrorCounterEcho:
      // Zero IP-ID in ICMP error messages, but a live router-wide counter
      // for echo replies: indirect probing can conclude nothing while
      // direct probing resolves the aliases (Table 2's biggest cell).
      if (kind == ReplyKind::kError) return 0;
      return advance(shared_, now);
    case topo::IpIdPolicy::kEchoProbe:
      return probe_ip_id;
    case topo::IpIdPolicy::kRandom:
      return static_cast<std::uint16_t>(rng_.uniform(0, 0xFFFF));
  }
  return 0;
}

}  // namespace mmlpt::fakeroute
