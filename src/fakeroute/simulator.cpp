#include "fakeroute/simulator.h"

#include "common/assert.h"

namespace mmlpt::fakeroute {

namespace {

std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Simulator::Simulator(const topo::GroundTruth& truth, SimConfig config,
                     std::uint64_t seed)
    : truth_(&truth), config_(config), rng_(seed), lb_salt_(mix64(seed)) {
  MMLPT_EXPECTS(truth.vertex_router.size() == truth.graph.vertex_count());
  routers_.reserve(truth.routers.size());
  limiters_.reserve(truth.routers.size());
  for (const auto& spec : truth.routers) {
    routers_.emplace_back(spec, rng_.fork());
    if (config_.icmp_rate_limit) {
      limiters_.emplace_back(RateLimiter(*config_.icmp_rate_limit,
                                         config_.rate_limit_burst));
    } else {
      limiters_.emplace_back(std::nullopt);
    }
  }
  const auto& g = truth.graph;
  for (topo::VertexId v = 0; v < g.vertex_count(); ++v) {
    const auto addr = g.vertex(v).addr;
    if (!addr.is_unspecified()) {
      interfaces_.emplace(addr, std::make_pair(v, truth.vertex_router[v]));
    }
  }
}

RouterState& Simulator::router_state(std::uint32_t router_index) {
  MMLPT_EXPECTS(router_index < routers_.size());
  return routers_[router_index];
}

Nanos Simulator::sample_rtt(std::uint16_t hop) {
  const double ms = config_.base_rtt_ms +
                    config_.per_hop_rtt_ms * static_cast<double>(hop) +
                    rng_.real() * config_.jitter_ms;
  return static_cast<Nanos>(ms * 1e6);
}

topo::VertexId Simulator::walk(const net::FlowTuple& flow, std::uint16_t hop) {
  const auto& g = truth_->graph;
  MMLPT_EXPECTS(hop < g.hop_count());
  net::FlowTuple hashed = flow;
  if (config_.per_destination_lb) {
    // Erase every Paris identifier the family carries: ports (v4) and
    // the flow label (v6) — a per-destination LB hashes addresses only.
    hashed.src_port = 0;
    hashed.dst_port = 0;
    hashed.flow_label = 0;
  }
  const std::uint64_t flow_digest = hashed.digest();

  topo::VertexId v = g.vertices_at(0)[0];
  for (std::uint16_t h = 0; h < hop; ++h) {
    const auto next = g.successors(v);
    MMLPT_ASSERT(!next.empty());
    if (next.size() == 1) {
      v = next[0];
    } else if (config_.per_packet_lb) {
      v = next[rng_.index(next.size())];
    } else {
      // Per-flow: deterministic, uniform-at-random across successors,
      // independent per load-balancing vertex (salted by vertex id).
      const std::uint64_t h64 = mix64(flow_digest ^ mix64(lb_salt_ ^ v));
      v = next[h64 % next.size()];
    }
  }
  return v;
}

std::optional<SimReply> Simulator::emit(
    std::uint32_t router_index, net::IpAddress interface, net::IpAddress to,
    std::uint16_t hop, std::uint16_t probe_ip_id, ReplyKind kind,
    const net::IcmpMessage* message4, const net::Icmpv6Message* message6,
    Nanos now) {
  MMLPT_EXPECTS((message4 != nullptr) != (message6 != nullptr));
  const auto& spec = truth_->routers[router_index];
  const bool responds = kind == ReplyKind::kEcho ? spec.responds_to_direct
                                                 : spec.responds_to_indirect;
  if (!responds) {
    ++counters_.dropped_unresponsive;
    return std::nullopt;
  }
  if (limiters_[router_index] && !limiters_[router_index]->allow(now)) {
    ++counters_.dropped_rate_limit;
    return std::nullopt;
  }
  if (config_.loss_prob > 0.0 && rng_.chance(config_.loss_prob)) {
    ++counters_.dropped_loss;
    return std::nullopt;
  }

  const std::uint8_t initial_ttl = kind == ReplyKind::kEcho
                                       ? spec.fingerprint.initial_ttl_echo
                                       : spec.fingerprint.initial_ttl_error;
  // The reply decrements once per hop on the way back; with symmetric
  // paths that is `hop` decrements (Network Fingerprinting's model).
  const auto reply_ttl = static_cast<std::uint8_t>(
      initial_ttl > hop ? initial_ttl - hop : 1);

  SimReply reply;
  if (message4 != nullptr) {
    const std::uint16_t ip_id = router_state(router_index)
                                    .next_ip_id(interface, now, probe_ip_id,
                                                kind);
    reply.datagram =
        net::build_icmp_datagram(*message4, interface, to, reply_ttl, ip_id);
  } else {
    // IPv6 carries no identification field: the router's IP-ID machinery
    // never runs, which is exactly why v6 alias resolution degrades to
    // "unsupported-family" upstream.
    reply.datagram =
        net::build_icmpv6_datagram(*message6, interface, to, reply_ttl);
  }
  reply.rtt = sample_rtt(hop);
  ++counters_.replies_out;
  return reply;
}

std::optional<SimReply> Simulator::handle_udp(
    const net::ParsedProbe& probe, std::span<const std::uint8_t> raw,
    Nanos now) {
  const auto& g = truth_->graph;
  const bool v6 = probe.family == net::Family::kIpv6;
  const std::uint16_t dest_hop = g.hop_count() - 1;
  const std::uint16_t expiry_hop =
      std::min<std::uint16_t>(probe.ttl(), dest_hop);
  const topo::VertexId v = walk(probe.flow(), expiry_hop);
  const std::uint32_t router = truth_->vertex_router[v];
  const auto interface = g.vertex(v).addr;
  if (interface.is_unspecified()) {
    ++counters_.dropped_unresponsive;  // star: never answers
    return std::nullopt;
  }

  // Routers quote the IP header + 8 bytes of the offending datagram, with
  // its TTL as seen on arrival; MPLS labels are attached when the
  // receiving interface is inside a labelled tunnel.
  const std::size_t header_size =
      v6 ? net::kIpv6HeaderSize : net::kIpv4HeaderSize;
  std::vector<std::uint8_t> quoted(
      raw.begin(),
      raw.begin() + std::min<std::size_t>(raw.size(), header_size + 8));
  std::vector<net::MplsLabelEntry> labels;
  const auto& spec = truth_->routers[router];
  if (spec.mpls_label) {
    labels.push_back({*spec.mpls_label, 0, true,
                      static_cast<std::uint8_t>(expiry_hop + 1)});
  }

  const std::uint16_t hop = expiry_hop;
  if (v6) {
    const auto message = expiry_hop == dest_hop
                             ? net::make_port_unreachable_v6(quoted, labels)
                             : net::make_time_exceeded_v6(quoted, labels);
    return emit(router, interface, probe.src(), hop, probe.ip_id(),
                ReplyKind::kError, nullptr, &message, now);
  }
  const auto message = expiry_hop == dest_hop
                           ? net::make_port_unreachable(quoted, labels)
                           : net::make_time_exceeded(quoted, labels);
  return emit(router, interface, probe.src(), hop, probe.ip_id(),
              ReplyKind::kError, &message, nullptr, now);
}

std::optional<SimReply> Simulator::handle_echo(const net::ParsedProbe& probe,
                                               Nanos now) {
  const auto it = interfaces_.find(probe.dst());
  if (it == interfaces_.end()) {
    ++counters_.dropped_unroutable;
    return std::nullopt;
  }
  const auto [vertex, router] = it->second;
  const std::uint16_t hop = truth_->graph.vertex(vertex).hop;
  if (probe.family == net::Family::kIpv6) {
    const auto message = net::make_echo_reply_v6(probe.icmp6);
    return emit(router, probe.dst(), probe.src(), hop, probe.ip_id(),
                ReplyKind::kEcho, nullptr, &message, now);
  }
  const auto message = net::make_echo_reply(probe.icmp);
  return emit(router, probe.dst(), probe.src(), hop, probe.ip_id(),
              ReplyKind::kEcho, &message, nullptr, now);
}

std::optional<SimReply> Simulator::handle(std::span<const std::uint8_t> probe,
                                          Nanos now) {
  ++counters_.probes_in;
  const auto parsed = net::parse_probe(probe);
  if (parsed.is_udp()) {
    return handle_udp(parsed, probe, now);
  }
  if (parsed.is_echo_request()) {
    return handle_echo(parsed, now);
  }
  ++counters_.dropped_unroutable;
  return std::nullopt;
}

}  // namespace mmlpt::fakeroute
