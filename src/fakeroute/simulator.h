// Fakeroute: the paper's Sec. 3 multipath-topology simulator, rebuilt as an
// in-process packet-level engine. A probe enters as real IPv4 or IPv6
// bytes (UDP traceroute probe or ICMP(v6) echo); the simulator walks it
// through the ground-truth topology with per-flow load balancing and
// synthesises the ICMP(v6) reply a real network would produce — Time
// Exceeded / Port (Dest) Unreachable with quoted datagram, MPLS extension
// labels, fingerprint TTLs, policy-driven IP-IDs (v4; IPv6 has no
// identification field), loss, and ICMP rate limiting. The family follows
// the ground truth's addresses: v6 router models answer v6 probes with
// ICMPv6, flow identity hashing the (src, dst, flow label) 3-tuple.
//
// The original Fakeroute hooked a real tool's packets via
// libnetfilter-queue; here the probing engine hands datagrams over
// directly, exercising the same craft -> wire -> parse code path.
#ifndef MMLPT_FAKEROUTE_SIMULATOR_H
#define MMLPT_FAKEROUTE_SIMULATOR_H

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "fakeroute/router_state.h"
#include "net/packet.h"
#include "topology/ground_truth.h"

namespace mmlpt::fakeroute {

struct SimConfig {
  /// Probability that a reply is silently lost (assumption-4 violation,
  /// Sec. 7 future-work extension).
  double loss_prob = 0.0;
  /// Per-router ICMP rate limit in replies/second; unset = unlimited
  /// (the paper's rate-limiting extension).
  std::optional<double> icmp_rate_limit;
  int rate_limit_burst = 8;
  /// Per-packet load balancing at every LB (assumption-2 violation).
  bool per_packet_lb = false;
  /// Per-destination load balancing: flow hash ignores ports.
  bool per_destination_lb = false;
  /// RTT model: base + per_hop * hop + U(0, jitter).
  double base_rtt_ms = 2.0;
  double per_hop_rtt_ms = 1.5;
  double jitter_ms = 0.8;
};

struct SimReply {
  std::vector<std::uint8_t> datagram;
  Nanos rtt = 0;
};

struct SimCounters {
  std::uint64_t probes_in = 0;
  std::uint64_t replies_out = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_rate_limit = 0;
  std::uint64_t dropped_unresponsive = 0;
  std::uint64_t dropped_unroutable = 0;
};

class Simulator {
 public:
  /// The ground truth must outlive the simulator.
  Simulator(const topo::GroundTruth& truth, SimConfig config,
            std::uint64_t seed);

  /// Handle one probe datagram at virtual time `now`; returns the reply
  /// (with its RTT) or nullopt when the probe elicits none.
  [[nodiscard]] std::optional<SimReply> handle(
      std::span<const std::uint8_t> probe, Nanos now);

  [[nodiscard]] const SimCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const topo::GroundTruth& truth() const noexcept {
    return *truth_;
  }

 private:
  /// Vertex the probe's flow reaches at `hop`, following per-flow load
  /// balancing decisions from hop 0.
  [[nodiscard]] topo::VertexId walk(const net::FlowTuple& flow,
                                    std::uint16_t hop);

  [[nodiscard]] std::optional<SimReply> handle_udp(
      const net::ParsedProbe& probe, std::span<const std::uint8_t> raw,
      Nanos now);
  [[nodiscard]] std::optional<SimReply> handle_echo(
      const net::ParsedProbe& probe, Nanos now);

  /// Emit a reply from `interface` (owned by `router_index`); applies
  /// responsiveness, rate limiting and loss. `hop` drives the RTT and
  /// reply-TTL model; pass 0 for direct (echo) replies. Exactly one of
  /// `message4` / `message6` is non-null, selecting the wire family.
  [[nodiscard]] std::optional<SimReply> emit(
      std::uint32_t router_index, net::IpAddress interface,
      net::IpAddress to, std::uint16_t hop, std::uint16_t probe_ip_id,
      ReplyKind kind, const net::IcmpMessage* message4,
      const net::Icmpv6Message* message6, Nanos now);

  [[nodiscard]] RouterState& router_state(std::uint32_t router_index);
  [[nodiscard]] Nanos sample_rtt(std::uint16_t hop);

  const topo::GroundTruth* truth_;
  SimConfig config_;
  Rng rng_;
  std::uint64_t lb_salt_;
  std::vector<RouterState> routers_;
  std::vector<std::optional<RateLimiter>> limiters_;
  /// interface address -> (vertex, router index)
  std::unordered_map<net::Ipv4Address, std::pair<topo::VertexId, std::uint32_t>>
      interfaces_;
  SimCounters counters_;
};

}  // namespace mmlpt::fakeroute

#endif  // MMLPT_FAKEROUTE_SIMULATOR_H
