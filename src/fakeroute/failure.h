// Exact MDA failure probabilities for a known topology (Sec. 3): the
// probability that stochastic successor discovery with stopping points
// n_k misses part of the topology, under the MDA model assumptions
// (uniform-at-random per-flow balancing, all probes answered, perfect
// node control, independence across vertices).
#ifndef MMLPT_FAKEROUTE_FAILURE_H
#define MMLPT_FAKEROUTE_FAILURE_H

#include <span>

#include "topology/graph.h"

namespace mmlpt::fakeroute {

/// Probability that a vertex with `successor_count` successors is not
/// fully resolved. `nk[k]` is the stopping point in force once k
/// successors are known (nk[0] unused); requires nk.size() > successor
/// count... i.e. entries up to nk[successor_count - 1].
[[nodiscard]] double vertex_failure_probability(int successor_count,
                                                std::span<const int> nk);

/// Probability that discovery of the whole topology fails: 1 minus the
/// product of per-vertex success probabilities.
[[nodiscard]] double topology_failure_probability(
    const topo::MultipathGraph& graph, std::span<const int> nk);

}  // namespace mmlpt::fakeroute

#endif  // MMLPT_FAKEROUTE_FAILURE_H
