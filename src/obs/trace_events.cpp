#include "obs/trace_events.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <thread>

namespace mmlpt::obs {
namespace {

std::atomic<TraceRecorder*> g_recorder{nullptr};

/// Compact stable thread id for the "tid" field. Chrome's viewer only
/// needs distinct small integers per thread, not OS tids.
std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{1};
  // relaxed: only uniqueness of the handed-out id matters, nothing is
  // published through it.
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void append_double(std::string& out, double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", v);
  out += buffer;
}

}  // namespace

TraceRecorder* recorder() noexcept {
  return g_recorder.load(std::memory_order_acquire);
}

void set_recorder(TraceRecorder* recorder) noexcept {
  g_recorder.store(recorder, std::memory_order_release);
}

void TraceRecorder::complete(const char* name, const char* category,
                             Clock::time_point begin, Clock::time_point end,
                             TraceArgs args) {
  append(Event{name, category, 'X', since_base_us(begin),
               std::chrono::duration_cast<std::chrono::microseconds>(end -
                                                                     begin)
                   .count(),
               current_tid(), std::move(args)});
}

void TraceRecorder::instant(const char* name, const char* category,
                            TraceArgs args) {
  append(Event{name, category, 'i', since_base_us(Clock::now()), 0,
               current_tid(), std::move(args)});
}

void TraceRecorder::append(Event event) {
  MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

std::size_t TraceRecorder::event_count() const {
  MutexLock lock(mutex_);
  return events_.size();
}

std::string TraceRecorder::json() const {
  MutexLock lock(mutex_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Event& event : events_) {
    if (!first) out += ',';
    first = false;
    // Names and categories are string literals chosen by instrumentation
    // sites, never user input — no escaping needed beyond trusting them
    // to be plain identifiers.
    out += "{\"name\":\"";
    out += event.name;
    out += "\",\"cat\":\"";
    out += event.category;
    out += "\",\"ph\":\"";
    out += event.phase;
    out += "\",\"ts\":";
    out += std::to_string(event.ts_us);
    if (event.phase == 'X') {
      out += ",\"dur\":";
      out += std::to_string(event.dur_us);
    }
    if (event.phase == 'i') {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(event.tid);
    if (!event.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) out += ',';
        first_arg = false;
        out += '"';
        out += key;
        out += "\":";
        append_double(out, value);
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

void TraceRecorder::write(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw std::runtime_error("cannot open trace-events file: " + path);
  }
  file << json() << '\n';
  if (!file.flush()) {
    throw std::runtime_error("failed writing trace-events file: " + path);
  }
}

}  // namespace mmlpt::obs
