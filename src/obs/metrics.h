// Process metrics for the observability layer: a registry of named
// counters, gauges and fixed-bucket histograms with Prometheus-text
// exposition.
//
// Shape of the contract:
//   * Registration (name + help + labels -> instrument pointer) takes a
//     mutex, happens once per call site, and is idempotent — asking for
//     the same (name, labels) pair again returns the SAME instrument, so
//     components can re-register on reconfiguration without duplicating
//     series.
//   * The fast path — Counter::add, Gauge::set, Histogram::observe — is
//     lock-free: counters stripe their cells across cache lines (one
//     relaxed fetch_add on a thread-local stripe, no sharing between
//     workers), histograms take one relaxed fetch_add per bucket.
//     Incrementing costs what the bespoke `++stats_.field` counters it
//     replaces cost; there is nothing to turn off.
//   * render() snapshots everything as Prometheus text (# HELP / # TYPE,
//     families sorted by name, histogram _bucket/_sum/_count with
//     cumulative le buckets) — the document mmlptd serves for a Metrics
//     frame and the CLIs write for --metrics-out.
//
// Instrument pointers are stable for the registry's lifetime; the
// registry must outlive every component holding one. Components that
// accept an optional registry fall back to a small privately-owned one,
// so their counters always exist and a stats() accessor can stay a pure
// view over the registry (exactly one source of truth per counter).
#ifndef MMLPT_OBS_METRICS_H
#define MMLPT_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mmlpt::obs {

/// Label set of one series, e.g. {{"transport", "poll"}}. Order is
/// preserved in the exposition; equality is order-sensitive by design
/// (call sites spell their labels one way).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter. add() is lock-free and wait-free: each thread owns
/// a stripe (cache-line-sized cell picked by a thread-local index), so
/// concurrent workers never contend on one atomic. value() sums the
/// stripes — a racy-read snapshot, exact once writers quiesce.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    // relaxed: pure statistic, no other data is published through it.
    cells_[stripe()].value.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      // relaxed: racy-read snapshot by contract, exact once writers
      // quiesce.
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  static constexpr std::size_t kStripes = 8;  // power of two

  [[nodiscard]] static std::size_t stripe() noexcept;

  Cell cells_[kStripes];
};

/// Last-value instrument with a monotonic-max variant (burst high-water
/// marks). Stored as int64 — gauges measure levels, not time.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    // relaxed: pure statistic, no other data is published through it.
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    // relaxed: pure statistic, no other data is published through it.
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Raise the gauge to `v` if it is below (lock-free CAS max).
  void record_max(std::int64_t v) noexcept {
    // relaxed: the load and the CAS only need atomicity of this one
    // word; the gauge carries no dependent data (relaxed throughout).
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (seen < v && !value_.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    // relaxed: racy-read snapshot by contract.
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: upper bounds are set at registration and
/// never change. observe(v) finds the first bucket with v <= bound
/// (values above every bound land in the implicit +Inf overflow bucket)
/// and bumps it with one relaxed fetch_add; the running sum is kept in
/// nanounits so it is a plain integer add, no atomic-double CAS loop.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts (NOT cumulative); the last entry is +Inf.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept {
    // relaxed: racy-read snapshot by contract.
    return static_cast<double>(
               sum_nanos_.load(std::memory_order_relaxed)) /
           1e9;
  }

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> buckets_;
  std::atomic<std::int64_t> sum_nanos_{0};
};

/// The instrument registry + Prometheus-text renderer (see file
/// comment). Thread-safe throughout; instrument methods are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or find) the counter `name{labels}`. The first call for a
  /// family fixes its help text; later calls may pass anything.
  [[nodiscard]] Counter* counter(const std::string& name,
                                 const std::string& help,
                                 Labels labels = {});
  [[nodiscard]] Gauge* gauge(const std::string& name,
                             const std::string& help, Labels labels = {});
  /// Register (or find) a histogram. `bounds` must be non-empty and
  /// strictly ascending; on a re-lookup the existing bounds win.
  [[nodiscard]] Histogram* histogram(const std::string& name,
                                     const std::string& help,
                                     std::vector<double> bounds,
                                     Labels labels = {});

  /// The full Prometheus text exposition.
  [[nodiscard]] std::string render() const;

  /// Flat (name{labels} -> value) snapshot of every counter and gauge —
  /// the CLIs' JSON summary line is built from this.
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>>
  scalar_snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<Series> series;
  };

  [[nodiscard]] Series* find_or_add_locked(const std::string& name,
                                           const std::string& help,
                                           Kind kind, Labels&& labels)
      MMLPT_REQUIRES(mutex_);

  mutable Mutex mutex_;
  /// Sorted exposition order. The map (and the Series vectors inside)
  /// are guarded; the instruments the unique_ptrs point at are
  /// internally thread-safe and handed out as stable raw pointers.
  std::map<std::string, Family> families_ MMLPT_GUARDED_BY(mutex_);
};

/// Canonical `name{a="b",c="d"}` series key (no braces when unlabeled).
[[nodiscard]] std::string series_key(const std::string& name,
                                     const Labels& labels);

}  // namespace mmlpt::obs

#endif  // MMLPT_OBS_METRICS_H
