#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "common/assert.h"

namespace mmlpt::obs {
namespace {

/// Prometheus label values escape backslash, double quote and newline.
std::string escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Shortest round-trip-ish rendering for bucket bounds and sums ("0.001",
/// "2.5", "1e+09") — %g matches what Prometheus clients conventionally
/// emit.
std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%g", v);
  return buffer;
}

}  // namespace

std::size_t Counter::stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  // relaxed: only uniqueness of the handed-out index matters, nothing is
  // published through it.
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index & (kStripes - 1);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  MMLPT_EXPECTS(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    MMLPT_EXPECTS(bounds_[i - 1] < bounds_[i]);
  }
  buckets_.reserve(bounds_.size() + 1);  // + the +Inf overflow bucket
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
}

void Histogram::observe(double v) noexcept {
  std::size_t bucket = bounds_.size();  // +Inf unless a bound holds v
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  // relaxed: pure statistics, no other data is published through them.
  buckets_[bucket]->fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<std::int64_t>(std::llround(v * 1e9)),
                       std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    // relaxed: racy-read snapshot by contract.
    counts.push_back(bucket->load(std::memory_order_relaxed));
  }
  return counts;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    // relaxed: racy-read snapshot by contract.
    total += bucket->load(std::memory_order_relaxed);
  }
  return total;
}

std::string series_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name;
  key += '{';
  bool first = true;
  for (const auto& [label, value] : labels) {
    if (!first) key += ',';
    first = false;
    key += label;
    key += "=\"";
    key += escape_label_value(value);
    key += '"';
  }
  key += '}';
  return key;
}

MetricsRegistry::Series* MetricsRegistry::find_or_add_locked(
    const std::string& name, const std::string& help, Kind kind,
    Labels&& labels) {
  auto [it, inserted] = families_.try_emplace(name);
  Family& family = it->second;
  if (inserted) {
    family.help = help;
    family.kind = kind;
  }
  // A family's kind is fixed by its first registration; a name reused
  // with a different instrument kind is a programming error.
  MMLPT_EXPECTS(family.kind == kind);
  for (auto& series : family.series) {
    if (series.labels == labels) return &series;
  }
  family.series.push_back(Series{std::move(labels), nullptr, nullptr,
                                 nullptr});
  return &family.series.back();
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& help, Labels labels) {
  MutexLock lock(mutex_);
  Series* series =
      find_or_add_locked(name, help, Kind::kCounter, std::move(labels));
  if (!series->counter) series->counter = std::make_unique<Counter>();
  return series->counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name,
                              const std::string& help, Labels labels) {
  MutexLock lock(mutex_);
  Series* series =
      find_or_add_locked(name, help, Kind::kGauge, std::move(labels));
  if (!series->gauge) series->gauge = std::make_unique<Gauge>();
  return series->gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> bounds,
                                      Labels labels) {
  MutexLock lock(mutex_);
  Series* series =
      find_or_add_locked(name, help, Kind::kHistogram, std::move(labels));
  if (!series->histogram) {
    series->histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return series->histogram.get();
}

std::string MetricsRegistry::render() const {
  MutexLock lock(mutex_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::kCounter:
        out += "counter\n";
        break;
      case Kind::kGauge:
        out += "gauge\n";
        break;
      case Kind::kHistogram:
        out += "histogram\n";
        break;
    }
    for (const auto& series : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out += series_key(name, series.labels) + " " +
                 std::to_string(series.counter->value()) + "\n";
          break;
        case Kind::kGauge:
          out += series_key(name, series.labels) + " " +
                 std::to_string(series.gauge->value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          const auto counts = h.bucket_counts();
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += counts[i];
            Labels with_le = series.labels;
            with_le.emplace_back("le", format_double(h.bounds()[i]));
            out += series_key(name + "_bucket", with_le) + " " +
                   std::to_string(cumulative) + "\n";
          }
          cumulative += counts.back();
          Labels with_le = series.labels;
          with_le.emplace_back("le", "+Inf");
          out += series_key(name + "_bucket", with_le) + " " +
                 std::to_string(cumulative) + "\n";
          out += series_key(name + "_sum", series.labels) + " " +
                 format_double(h.sum()) + "\n";
          out += series_key(name + "_count", series.labels) + " " +
                 std::to_string(cumulative) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::int64_t>>
MetricsRegistry::scalar_snapshot() const {
  MutexLock lock(mutex_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  for (const auto& [name, family] : families_) {
    if (family.kind == Kind::kHistogram) continue;
    for (const auto& series : family.series) {
      const std::int64_t value =
          family.kind == Kind::kCounter
              ? static_cast<std::int64_t>(series.counter->value())
              : series.gauge->value();
      out.emplace_back(series_key(name, series.labels), value);
    }
  }
  return out;
}

}  // namespace mmlpt::obs
