// Per-trace span/event recording in Chrome trace-event JSON — the
// exportable timeline the rTraceroute line of work argues for. A
// TraceRecorder buffers complete ("ph":"X") and instant ("ph":"i")
// events with microsecond timestamps relative to its own construction;
// write() dumps the {"traceEvents":[...]} document chrome://tracing and
// Perfetto load directly.
//
// Zero-overhead-when-disabled contract: instrumentation points consult
// the process-global recorder() pointer, which is null unless a CLI saw
// --trace-events FILE. Disabled, every span/instant helper is one
// null-check and nothing else — no clock read, no allocation, no lock.
// Enabled, events append under a mutex (instrumented paths are bursty,
// not per-packet-hot; the probe hot path records per-WINDOW spans and
// per-reply instants, never per-syscall events).
//
// set_recorder() must be called before any instrumented thread starts
// (the CLIs set it during flag parsing) and cleared only after they
// join; the pointer itself is atomic so readers never race the store.
#ifndef MMLPT_OBS_TRACE_EVENTS_H
#define MMLPT_OBS_TRACE_EVENTS_H

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mmlpt::obs {

/// "key":value arguments of a trace event. Numeric only — counts, ids,
/// microseconds; trace viewers aggregate numbers, not strings. Keys must
/// be string literals (the recorder stores the pointers).
using TraceArgs = std::vector<std::pair<const char*, double>>;

class TraceRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  TraceRecorder() : base_(Clock::now()) {}
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// A complete event: [begin, end) on the calling thread's timeline.
  /// `name` and `category` must be string literals.
  void complete(const char* name, const char* category,
                Clock::time_point begin, Clock::time_point end,
                TraceArgs args = {});

  /// A zero-duration instant event stamped now.
  void instant(const char* name, const char* category, TraceArgs args = {});

  [[nodiscard]] std::size_t event_count() const;

  /// The {"traceEvents":[...]} document.
  [[nodiscard]] std::string json() const;

  /// Write json() to `path`; throws on I/O failure.
  void write(const std::string& path) const;

 private:
  struct Event {
    const char* name;
    const char* category;
    char phase;          ///< 'X' complete, 'i' instant
    std::int64_t ts_us;  ///< relative to base_
    std::int64_t dur_us; ///< complete events only
    std::uint32_t tid;
    TraceArgs args;
  };

  void append(Event event);
  [[nodiscard]] std::int64_t since_base_us(Clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::microseconds>(t - base_)
        .count();
  }

  Clock::time_point base_;
  mutable Mutex mutex_;
  std::vector<Event> events_ MMLPT_GUARDED_BY(mutex_);
};

/// The process-global recorder; null = tracing disabled (the common
/// case — instrumentation compiles down to this null-check).
[[nodiscard]] TraceRecorder* recorder() noexcept;
void set_recorder(TraceRecorder* recorder) noexcept;

/// RAII complete-event span over the global recorder. Costs one branch
/// when tracing is off; the clock is only read when it is on.
class Span {
 public:
  explicit Span(const char* name, const char* category = "mmlpt")
      : recorder_(recorder()), name_(name), category_(category) {
    if (recorder_ != nullptr) begin_ = TraceRecorder::Clock::now();
  }
  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach an argument reported when the span closes (e.g. a count
  /// known only at the end).
  void arg(const char* key, double value) {
    if (recorder_ != nullptr) args_.emplace_back(key, value);
  }

  /// Close the span early (idempotent; the destructor is then a no-op).
  void finish() {
    if (recorder_ == nullptr) return;
    recorder_->complete(name_, category_, begin_,
                        TraceRecorder::Clock::now(), std::move(args_));
    recorder_ = nullptr;
  }

 private:
  TraceRecorder* recorder_;
  const char* name_;
  const char* category_;
  TraceRecorder::Clock::time_point begin_{};
  TraceArgs args_;
};

/// Instant event on the global recorder; one null-check when disabled.
inline void instant(const char* name, const char* category = "mmlpt",
                    std::initializer_list<std::pair<const char*, double>>
                        args = {}) {
  if (TraceRecorder* r = recorder(); r != nullptr) {
    r->instant(name, category, TraceArgs(args.begin(), args.end()));
  }
}

}  // namespace mmlpt::obs

#endif  // MMLPT_OBS_TRACE_EVENTS_H
