// Network decorator that turns the simulator's VIRTUAL reply latency into
// real wall-clock blocking, emulating what a real transport does: a probe
// costs its round-trip time, an unanswered probe costs the reply timeout.
//
// This is the workload model behind bench_perf_fleet_throughput: Internet
// probing is latency-bound, not CPU-bound, so a fleet's speedup comes
// from OVERLAPPING the waits of independent destinations. Wrapping each
// worker's simulator in this decorator reproduces that regime in-process
// (scaled down so benches finish in seconds).
#ifndef MMLPT_ORCHESTRATOR_LATENCY_NETWORK_H
#define MMLPT_ORCHESTRATOR_LATENCY_NETWORK_H

#include "probe/network.h"

namespace mmlpt::orchestrator {

class BlockingLatencyNetwork final : public probe::Network {
 public:
  struct Config {
    /// Wall-clock seconds slept per virtual second of RTT. 1.0 = real
    /// time; benches use ~0.01-0.05 to compress a survey into seconds.
    double scale = 1.0;
    /// Virtual RTT charged for an unanswered probe (a real transport
    /// blocks for its reply timeout). 100 ms, the simulator's RTTs are
    /// a few ms.
    probe::Nanos unanswered_rtt = 100'000'000;
  };

  /// The inner transport must outlive this decorator.
  BlockingLatencyNetwork(probe::Network& inner, Config config)
      : inner_(&inner), config_(config) {}

  [[nodiscard]] std::optional<probe::Received> transact(
      std::span<const std::uint8_t> datagram, probe::Nanos now) override;

  /// A window blocks for its SLOWEST reply, not the sum — the batched
  /// transport overlaps the waits within one worker the same way the
  /// fleet overlaps them across workers.
  [[nodiscard]] std::vector<std::optional<probe::Received>> transact_batch(
      std::span<const probe::Datagram> batch) override;

 private:
  void block_for(probe::Nanos virtual_rtt) const;

  probe::Network* inner_;
  Config config_;
};

}  // namespace mmlpt::orchestrator

#endif  // MMLPT_ORCHESTRATOR_LATENCY_NETWORK_H
