// Transport decorator that turns the simulator's VIRTUAL reply latency
// into real wall-clock blocking, emulating what a real transport does: a
// probe costs its round-trip time, an unanswered probe costs the reply
// timeout.
//
// This is the workload model behind bench_perf_fleet_throughput: Internet
// probing is latency-bound, not CPU-bound, so a fleet's speedup comes
// from OVERLAPPING the waits of independent destinations. Wrapping each
// worker's simulator in this decorator reproduces that regime in-process
// (scaled down so benches finish in seconds).
//
// On the submit/completion seam the emulation is per-completion: each
// reply becomes due scale * rtt after its window was submitted, and
// poll_completions() sleeps until the earliest due completion — so a
// full drain of one window still blocks for its SLOWEST reply, while
// completions of interleaved tickets surface in wall-clock arrival
// order, exactly like a real receive loop.
//
// Config::per_window_cost models the FIXED price of one send burst +
// receive-loop pass (syscalls, poll wakeups): it is charged once per
// submitted window, and — when a SharedWire is given — serialized across
// every transport sharing that wire, the way concurrent tracers on one
// host contend for its single raw socket and receive loop. The fleet
// merger pays this cost once per MERGED burst instead of once per
// per-trace window; that amortization is the throughput effect
// bench_perf_fleet_throughput measures.
#ifndef MMLPT_ORCHESTRATOR_LATENCY_NETWORK_H
#define MMLPT_ORCHESTRATOR_LATENCY_NETWORK_H

#include <chrono>
#include <map>
#include <vector>

#include "common/mutex.h"
#include "probe/network.h"

namespace mmlpt::orchestrator {

/// The serialized per-host transport resource (one raw socket, one
/// receive loop): transports sharing a SharedWire charge their fixed
/// per-window cost under its lock, one at a time.
struct SharedWire {
  Mutex mutex;
};

/// Virtual RTT charged for an unanswered probe (a real transport blocks
/// for its reply timeout): 100 ms, the simulator's RTTs are a few ms.
/// Shared by every latency emulator so the workload model cannot drift
/// between the per-worker decorator and the fleet merger.
inline constexpr probe::Nanos kDefaultUnansweredRtt = 100'000'000;

/// Wall-clock duration of `virtual_ns` under `scale` (<= 0 = zero).
[[nodiscard]] inline std::chrono::nanoseconds scaled_wall(
    double scale, probe::Nanos virtual_ns) {
  if (scale <= 0.0) return std::chrono::nanoseconds::zero();
  return std::chrono::nanoseconds(static_cast<std::int64_t>(
      static_cast<double>(virtual_ns) * scale));
}

class BlockingLatencyNetwork final : public probe::Network {
 public:
  struct Config {
    /// Wall-clock seconds slept per virtual second of RTT. 1.0 = real
    /// time; benches use ~0.01-0.05 to compress a survey into seconds.
    double scale = 1.0;
    probe::Nanos unanswered_rtt = kDefaultUnansweredRtt;
    /// Fixed virtual cost of one send burst + receive-loop pass, charged
    /// per submitted window (0 = free). Serialized on `wire` when set.
    probe::Nanos per_window_cost = 0;
    /// Virtual cost per probe IN the window (the poll transport's
    /// one-syscall-per-datagram submission tax; 0 models the batched
    /// sendmmsg/io_uring transports). Charged with per_window_cost,
    /// under the same wire serialization.
    probe::Nanos per_probe_cost = 0;
    SharedWire* wire = nullptr;
  };

  /// The inner transport must outlive this decorator.
  BlockingLatencyNetwork(probe::Network& inner, Config config)
      : inner_(&inner), config_(config) {}

  [[nodiscard]] std::optional<probe::Received> transact(
      std::span<const std::uint8_t> datagram, probe::Nanos now) override;

  void submit(std::span<const probe::Datagram> window, probe::Ticket ticket,
              const probe::SubmitOptions& options) override;
  using probe::Network::submit;
  [[nodiscard]] std::vector<probe::Completion> poll_completions() override;
  void cancel(probe::Ticket ticket) override;
  [[nodiscard]] std::size_t pending() const override;

 private:
  using WallClock = std::chrono::steady_clock;

  void block_for(probe::Nanos virtual_rtt) const;
  /// Charge the fixed per-window cost plus the per-probe submission tax
  /// for `probes` datagrams, serialized on the shared wire.
  void charge_window_cost(std::size_t probes) const;
  [[nodiscard]] WallClock::duration scaled(probe::Nanos virtual_rtt) const;

  struct TimedCompletion {
    probe::Completion completion;
    WallClock::time_point due;
  };
  struct TicketBase {
    WallClock::time_point submitted;
    std::size_t outstanding = 0;
  };

  probe::Network* inner_;
  Config config_;
  std::map<probe::Ticket, TicketBase> bases_;
  std::vector<TimedCompletion> held_;
};

}  // namespace mmlpt::orchestrator

#endif  // MMLPT_ORCHESTRATOR_LATENCY_NETWORK_H
