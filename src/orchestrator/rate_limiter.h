// Token-bucket probe-rate limiter shared by every worker of a fleet run.
//
// The paper's survey methodology (and plain Internet citizenship) bounds
// the probing rate of a measurement host; when N workers trace N
// destinations concurrently, the bound must hold for the SUM of their
// traffic, not per worker. One RateLimiter instance therefore hangs off
// the FleetScheduler and every worker's transport acquires from it.
#ifndef MMLPT_ORCHESTRATOR_RATE_LIMITER_H
#define MMLPT_ORCHESTRATOR_RATE_LIMITER_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mmlpt::obs {
class Counter;
class MetricsRegistry;
}  // namespace mmlpt::obs

namespace mmlpt::orchestrator {

/// Thread-safe token bucket: `packets_per_second` tokens accrue
/// continuously up to a cap of `burst`; each probe spends one token.
/// acquire() blocks (sleeping, not spinning) until its tokens are
/// available, so a saturated fleet self-paces to the configured rate.
class RateLimiter {
 public:
  using Clock = std::chrono::steady_clock;
  /// Injectable time source — tests drive a fake clock through this seam
  /// and assert on try_acquire() instead of real sleeps.
  using NowFn = std::function<Clock::time_point()>;

  /// `packets_per_second` <= 0 means unlimited (every acquire succeeds
  /// immediately). Requires burst >= 1.
  RateLimiter(double packets_per_second, int burst);
  RateLimiter(double packets_per_second, int burst, NowFn now);

  RateLimiter(const RateLimiter&) = delete;
  RateLimiter& operator=(const RateLimiter&) = delete;

  /// Block until `packets` tokens are spent. Requests larger than the
  /// burst capacity are served in burst-sized chunks, so a big probe
  /// window still drains at the configured rate instead of deadlocking.
  void acquire(int packets = 1);

  /// Spend `packets` tokens iff all are available right now.
  [[nodiscard]] bool try_acquire(int packets = 1);

  [[nodiscard]] double packets_per_second() const noexcept { return pps_; }
  [[nodiscard]] int burst() const noexcept { return burst_; }
  [[nodiscard]] bool unlimited() const noexcept { return pps_ <= 0.0; }
  /// Total tokens ever granted (metrics / tests).
  [[nodiscard]] std::uint64_t granted() const;

  /// Register this limiter's series in `registry`, labeled
  /// scope=`scope`: tokens granted, blocking waits, and total time spent
  /// sleeping. Safe to call while workers are already acquiring: the
  /// counter pointers are published under mutex_ and read under it.
  void instrument(obs::MetricsRegistry& registry, const std::string& scope);

 private:
  /// Accrue tokens for the time elapsed since the last refill.
  void refill_locked(Clock::time_point now) MMLPT_REQUIRES(mutex_);
  /// Take `want` tokens or report the shortfall wait; lock held.
  [[nodiscard]] bool take_locked(int want, Clock::duration& wait)
      MMLPT_REQUIRES(mutex_);

  double pps_;
  int burst_;
  NowFn now_;
  mutable Mutex mutex_;
  double tokens_ MMLPT_GUARDED_BY(mutex_);
  Clock::time_point last_refill_ MMLPT_GUARDED_BY(mutex_);
  std::uint64_t granted_ MMLPT_GUARDED_BY(mutex_) = 0;
  /// Null until instrument(). The pointers are guarded by mutex_; the
  /// Counters they point at are internally thread-safe, so callers
  /// snapshot the pointer under the lock and bump outside it.
  obs::Counter* waits_ MMLPT_GUARDED_BY(mutex_) = nullptr;
  obs::Counter* wait_micros_ MMLPT_GUARDED_BY(mutex_) = nullptr;
  obs::Counter* granted_counter_ MMLPT_GUARDED_BY(mutex_) = nullptr;
};

}  // namespace mmlpt::orchestrator

#endif  // MMLPT_ORCHESTRATOR_RATE_LIMITER_H
