// FleetTransportHub: the cross-trace window merger. N concurrent tracers
// each assemble probe windows their stopping rules have already
// committed to; instead of every tracer paying for its own send burst
// and receive-loop pass, each trace's window is committed into a SHARED
// fleet window — one burst serves every tracer with work outstanding —
// and completions are demultiplexed back to their tracer by ticket.
//
// Shape: each fleet task opens a Channel (a probe::TransportQueue — also
// a probe::Network for the compatibility surface) over its backend
// transport. Channels may share one backend (the real deployment: every
// tracer multiplexed onto one RawSocketNetwork/IoUringNetwork socket
// pair, whose receive loop already attributes replies across tickets) or
// own one each (simulation: one Fakeroute simulator per destination).
// submit() only GATHERS the window; the burst is staged when every open
// channel is blocked waiting (nobody left to contribute) or the gather
// timeout expires, whichever is first. There is no dedicated hub thread:
// the waiting workers themselves drive the wire, exactly like
// FleetScheduler's result drainer.
//
// Pipelined bursts: up to Config::pipeline_depth bursts may be in
// flight at once. One worker at a time owns the wire (wire_owner_) —
// backends stay single-threaded objects — dispatching staged bursts and
// sweeping completions; when the owner's OWN completions arrive it
// releases the wire and any other waiting worker takes over the receive
// loop, so a new merged burst launches while the previous burst's
// stragglers are still pending. depth 1 reproduces the strict
// resolve-before-next-burst discipline of the original flusher.
//
// A dispatch charges the fleet-wide RateLimiter ONCE for the whole
// burst — the pps budget is saturated by fleet-wide in-flight probes,
// not per-trace windows.
//
// Invariance: merging and pipelining change only WHEN a backend sees a
// window on the wall clock, never which datagrams it sees or in what
// order (each channel's windows dispatch in submission order, and a
// tracer blocks on its window before assembling the next). Per-trace
// topology, packet accounting and stopping decisions are therefore
// identical under merging at any pipeline depth, and merged fleet output
// is byte-identical to the unmerged jobs=1 run — the bench and
// tests/orchestrator/ gate this.
//
// Latency emulation (benches): with latency_scale > 0 the hub assumes
// instant simulated backends and emulates the wall-clock cost itself —
// per_burst_cost once per merged burst (the fixed receive-loop pass that
// unmerged tracers each pay per window) plus per_probe_cost for every
// probe in it (the per-probe syscall cost of the poll transport; zero
// models the batched-submission transports), then each completion comes
// due scale * rtt after the burst. Real backends time themselves: leave
// the scale at 0.
#ifndef MMLPT_ORCHESTRATOR_FLEET_TRANSPORT_H
#define MMLPT_ORCHESTRATOR_FLEET_TRANSPORT_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "orchestrator/latency_network.h"
#include "orchestrator/rate_limiter.h"
#include "probe/network.h"

namespace mmlpt::orchestrator {

class FleetTransportHub {
 public:
  struct Config {
    /// How long the first gathered window may wait for co-travellers
    /// before the burst fires anyway (wall clock).
    std::chrono::nanoseconds gather_timeout{2'000'000};
    /// Fleet-wide pacing: one acquire(probes-in-burst) per dispatch. The
    /// limiter itself chunks a large burst to its token-bucket burst
    /// capacity, so the hub needs no probe cap of its own.
    RateLimiter* limiter = nullptr;
    /// Merged bursts that may be in flight (staged or on the wire with
    /// unrouted slots) at once. 1 = the strict resolve-before-next
    /// discipline; higher lets a new burst launch over the previous
    /// burst's stragglers.
    int pipeline_depth = 1;
    /// Latency emulation over instant simulated backends; 0 = off.
    double latency_scale = 0.0;
    probe::Nanos unanswered_rtt = kDefaultUnansweredRtt;
    /// Fixed virtual cost of one send burst + receive-loop pass, paid
    /// once per MERGED burst (the unmerged pipeline pays it per window).
    probe::Nanos per_burst_cost = 0;
    /// Virtual per-probe submission cost (the poll transport's
    /// one-syscall-per-probe tax; 0 models batched submission).
    probe::Nanos per_probe_cost = 0;
    /// Registry the hub's burst counters and size histograms live in.
    /// Null = a privately-owned registry, so the counters always exist
    /// and stats() stays a pure view.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Burst composition counters — the bench's "send bursts contain
  /// probes from >= 2 distinct destinations" evidence, plus the
  /// pipelining evidence (bursts dispatched over an unresolved
  /// predecessor). Snapshot view over the registry series — the registry
  /// instruments are the single source of truth.
  struct Stats {
    std::uint64_t bursts = 0;
    std::uint64_t probes = 0;
    std::uint64_t windows = 0;
    /// Bursts that carried windows of >= 2 distinct channels.
    std::uint64_t merged_bursts = 0;
    std::uint64_t max_channels_in_burst = 0;
    std::uint64_t max_probes_in_burst = 0;
    /// Bursts dispatched while a previous burst still had unrouted
    /// slots on the wire (requires pipeline_depth > 1 and a backend
    /// that actually keeps slots in flight).
    std::uint64_t overlapped_bursts = 0;
    std::uint64_t max_bursts_in_flight = 0;
  };

  explicit FleetTransportHub(Config config);
  ~FleetTransportHub();

  FleetTransportHub(const FleetTransportHub&) = delete;
  FleetTransportHub& operator=(const FleetTransportHub&) = delete;

  class Channel;

  /// Open a per-trace channel over `backend`. The backend must outlive
  /// the channel; every channel must be destroyed before the hub. The
  /// hub only touches `backend` while the owning channel is blocked in
  /// poll_completions() or destruction, so a task-private backend needs
  /// no locking of its own.
  [[nodiscard]] std::unique_ptr<Channel> open_channel(
      probe::TransportQueue& backend);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  using WallClock = std::chrono::steady_clock;

  struct Submission {
    std::vector<probe::Datagram> window;
    probe::Ticket ticket = 0;
    probe::SubmitOptions options;
  };
  struct TimedCompletion {
    probe::Completion completion;
    WallClock::time_point due;
  };
  /// Every field is guarded by the owning hub's mutex_ (the thread
  /// safety analysis cannot express a guard across objects, so the
  /// discipline is enforced on the hub methods instead: each one either
  /// takes the lock or is annotated MMLPT_REQUIRES(mutex_)). The only
  /// exception: the wire owner touches *backend unlocked — backends are
  /// single-threaded objects owned by exactly one thread at a time.
  struct ChannelState {
    probe::TransportQueue* backend = nullptr;
    std::deque<Submission> gathered;
    std::vector<TimedCompletion> timed;  ///< latency-emulated, not yet due
    std::vector<probe::Completion> ready;
    std::size_t in_flight = 0;  ///< slots staged/dispatched, not routed
    bool in_poll = false;
  };
  /// Where a backend ticket's completions go. `resolved` tracks which
  /// slots have been routed, so a failed burst can resolve the rest.
  struct Route {
    ChannelState* channel = nullptr;
    probe::Ticket caller_ticket = 0;
    std::size_t remaining = 0;
    std::vector<bool> resolved;
    /// Which staged burst the window belongs to (depth accounting).
    std::uint64_t burst = 0;
    /// Submitted to the backend (false while merely staged).
    bool dispatched = false;
    /// When the owning burst hit the wire (latency-emulation base).
    WallClock::time_point base{};
  };
  /// One window of a staged burst, retagged with its backend ticket.
  struct BurstItem {
    ChannelState* channel = nullptr;
    Submission submission;
    probe::Ticket backend_ticket = 0;
  };
  /// A snapshot burst waiting for the wire owner to dispatch it.
  struct StagedBurst {
    std::uint64_t id = 0;
    std::vector<BurstItem> items;
    std::size_t probes = 0;
  };

  void channel_submit(ChannelState& state,
                      std::span<const probe::Datagram> window,
                      probe::Ticket ticket,
                      const probe::SubmitOptions& options);
  [[nodiscard]] std::vector<probe::Completion> channel_poll(
      ChannelState& state);
  void channel_cancel(ChannelState& state, probe::Ticket ticket);
  [[nodiscard]] std::size_t channel_pending(const ChannelState& state) const;
  void close_channel(ChannelState& state);

  /// Bursts counted against pipeline_depth: staged plus on-wire.
  [[nodiscard]] std::size_t bursts_in_flight_locked() const
      MMLPT_REQUIRES(mutex_) {
    return staged_.size() + burst_unrouted_.size();
  }
  [[nodiscard]] bool can_stage_locked(WallClock::time_point now) const
      MMLPT_REQUIRES(mutex_);
  /// Snapshot every gathered window into one staged burst (routes
  /// created, in_flight counted); the wire owner dispatches it.
  void stage_burst_locked() MMLPT_REQUIRES(mutex_);
  /// Become the wire owner: dispatch staged bursts and sweep backend
  /// completions until the wire is idle or `stop()` (checked under the
  /// lock) asks to hand the receive loop to another worker. Entered and
  /// left with the lock held; unlocked while touching backends.
  /// NO_THREAD_SAFETY_ANALYSIS (body only — callers still must hold
  /// mutex_): the function drops and reacquires the caller's scoped lock
  /// around backend I/O, a hand-off the analysis cannot follow.
  void drive_wire(MutexLock& lock, const std::function<bool()>& stop)
      MMLPT_REQUIRES(mutex_) MMLPT_NO_THREAD_SAFETY_ANALYSIS;
  /// One unlocked pass over every backend with dispatched unrouted
  /// slots, routing whatever completed. Lock held on entry and exit.
  /// NO_THREAD_SAFETY_ANALYSIS: same unlock/relock hand-off as
  /// drive_wire; call sites are still checked against REQUIRES.
  void sweep_backends(MutexLock& lock) MMLPT_REQUIRES(mutex_)
      MMLPT_NO_THREAD_SAFETY_ANALYSIS;
  /// Pace, emulate latency cost, submit every window of `burst` to its
  /// backend. Called unlocked (only the wire owner gets here). Returns
  /// the burst's wall-clock base for latency emulation.
  [[nodiscard]] WallClock::time_point dispatch_burst(StagedBurst& burst)
      MMLPT_EXCLUDES(mutex_);
  /// A backend threw while this thread owned the wire: cancel + drain
  /// every dispatched ticket so stale completions cannot leak into a
  /// later sweep, resolve every unrouted slot (staged included) as
  /// unanswered so the other tracers see timeouts instead of hanging
  /// forever, and release the wire. Lock held on entry and exit.
  /// NO_THREAD_SAFETY_ANALYSIS: same unlock/relock hand-off as
  /// drive_wire; call sites are still checked against REQUIRES.
  void fail_wire_locked(MutexLock& lock) MMLPT_REQUIRES(mutex_)
      MMLPT_NO_THREAD_SAFETY_ANALYSIS;
  /// Resolve every still-unrouted slot of every route as unanswered.
  void abandon_outstanding_locked() MMLPT_REQUIRES(mutex_);
  /// Move state.timed completions that have come due into state.ready.
  void release_due_locked(ChannelState& state, WallClock::time_point now)
      MMLPT_REQUIRES(mutex_);
  /// drive_wire stop hook for channel_poll: release due completions and
  /// test whether `state` has results ready. NO_THREAD_SAFETY_ANALYSIS:
  /// only invoked by the wire owner, from inside drive_wire, with mutex_
  /// held — a context the analysis cannot see into a std::function.
  [[nodiscard]] bool poll_stop_check(ChannelState& state)
      MMLPT_NO_THREAD_SAFETY_ANALYSIS;

  void register_metrics();

  Config config_;
  mutable Mutex mutex_;
  CondVar cv_;
  std::vector<std::unique_ptr<ChannelState>> channels_
      MMLPT_GUARDED_BY(mutex_);
  std::size_t open_channels_ MMLPT_GUARDED_BY(mutex_) = 0;
  std::size_t polling_ MMLPT_GUARDED_BY(mutex_) = 0;
  /// A worker is currently dispatching/sweeping (backends are
  /// single-threaded: exactly one wire owner at a time).
  bool wire_owner_ MMLPT_GUARDED_BY(mutex_) = false;
  std::size_t gathered_probes_ MMLPT_GUARDED_BY(mutex_) = 0;
  std::optional<WallClock::time_point> gather_deadline_
      MMLPT_GUARDED_BY(mutex_);
  probe::Ticket next_backend_ticket_ MMLPT_GUARDED_BY(mutex_) = 1;
  std::uint64_t next_burst_id_ MMLPT_GUARDED_BY(mutex_) = 1;
  std::deque<StagedBurst> staged_ MMLPT_GUARDED_BY(mutex_);
  /// Unrouted slot count per dispatched burst; an entry disappearing is
  /// a burst fully resolved (frees a pipeline_depth slot).
  std::unordered_map<std::uint64_t, std::size_t> burst_unrouted_
      MMLPT_GUARDED_BY(mutex_);
  /// Slots submitted to backends whose completions are not yet routed.
  std::size_t dispatched_unrouted_ MMLPT_GUARDED_BY(mutex_) = 0;
  std::unordered_map<probe::Ticket, Route> routes_ MMLPT_GUARDED_BY(mutex_);
  /// Backing registry when Config::metrics is null. The instrument
  /// pointers below are set once in register_metrics() (construction,
  /// single-threaded) and immutable afterwards; the instruments are
  /// internally thread-safe, so no guard is needed.
  obs::MetricsRegistry fallback_metrics_;
  obs::Counter* bursts_ = nullptr;
  obs::Counter* probes_ = nullptr;
  obs::Counter* windows_ = nullptr;
  obs::Counter* merged_bursts_ = nullptr;
  obs::Counter* overlapped_bursts_ = nullptr;
  obs::Gauge* max_channels_in_burst_ = nullptr;
  obs::Gauge* max_probes_in_burst_ = nullptr;
  obs::Gauge* max_bursts_in_flight_ = nullptr;
  obs::Histogram* burst_probes_hist_ = nullptr;
  obs::Histogram* burst_channels_hist_ = nullptr;
};

/// The per-trace face of the hub: a TransportQueue whose submissions are
/// merged into fleet bursts. Also a Network, so legacy blocking call
/// sites (transact / transact_batch) keep working through the shim.
class FleetTransportHub::Channel final : public probe::Network {
 public:
  ~Channel() override;

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  [[nodiscard]] std::optional<probe::Received> transact(
      std::span<const std::uint8_t> datagram, probe::Nanos now) override;

  void submit(std::span<const probe::Datagram> window, probe::Ticket ticket,
              const probe::SubmitOptions& options) override;
  using probe::Network::submit;
  [[nodiscard]] std::vector<probe::Completion> poll_completions() override;
  /// Cancels still-GATHERED windows of `ticket` (canceled completions
  /// surface on the next poll). Windows already staged or dispatched to
  /// the wire resolve normally.
  void cancel(probe::Ticket ticket) override;
  [[nodiscard]] std::size_t pending() const override;

 private:
  friend class FleetTransportHub;
  Channel(FleetTransportHub& hub, ChannelState& state)
      : hub_(&hub), state_(&state) {}

  FleetTransportHub* hub_;
  ChannelState* state_;
};

}  // namespace mmlpt::orchestrator

#endif  // MMLPT_ORCHESTRATOR_FLEET_TRANSPORT_H
