#include "orchestrator/rate_limiter.h"

#include <algorithm>
#include <thread>

#include "common/assert.h"
#include "obs/metrics.h"

namespace mmlpt::orchestrator {

void RateLimiter::instrument(obs::MetricsRegistry& registry,
                             const std::string& scope) {
  const obs::Labels labels{{"scope", scope}};
  obs::Counter* granted = registry.counter(
      "mmlpt_rate_limiter_tokens_granted_total",
      "Tokens spent by probe senders", labels);
  obs::Counter* waits =
      registry.counter("mmlpt_rate_limiter_waits_total",
                       "acquire() calls that had to sleep", labels);
  obs::Counter* wait_micros =
      registry.counter("mmlpt_rate_limiter_wait_microseconds_total",
                       "Time spent sleeping for tokens", labels);
  // Publish the pointers under mutex_ so concurrently-acquiring workers
  // never observe a half-written pointer set, and mirror tokens granted
  // before instrumentation so the registry series matches granted().
  MutexLock lock(mutex_);
  granted_counter_ = granted;
  waits_ = waits;
  wait_micros_ = wait_micros;
  if (granted_ > 0) granted_counter_->add(granted_);
}

RateLimiter::RateLimiter(double packets_per_second, int burst)
    : RateLimiter(packets_per_second, burst,
                  [] { return Clock::now(); }) {}

RateLimiter::RateLimiter(double packets_per_second, int burst, NowFn now)
    : pps_(packets_per_second),
      burst_(burst),
      now_(std::move(now)),
      tokens_(static_cast<double>(burst)),
      last_refill_(now_()) {
  MMLPT_EXPECTS(burst >= 1);
}

void RateLimiter::refill_locked(Clock::time_point now) {
  if (now <= last_refill_) return;
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          now - last_refill_);
  tokens_ = std::min(static_cast<double>(burst_),
                     tokens_ + elapsed.count() * pps_);
  last_refill_ = now;
}

bool RateLimiter::take_locked(int want, Clock::duration& wait) {
  refill_locked(now_());
  if (tokens_ >= static_cast<double>(want)) {
    tokens_ -= static_cast<double>(want);
    granted_ += static_cast<std::uint64_t>(want);
    if (granted_counter_ != nullptr) {
      granted_counter_->add(static_cast<std::uint64_t>(want));
    }
    return true;
  }
  const double deficit = static_cast<double>(want) - tokens_;
  wait = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(deficit / pps_));
  return false;
}

void RateLimiter::acquire(int packets) {
  MMLPT_EXPECTS(packets >= 1);
  if (unlimited()) return;
  int remaining = packets;
  while (remaining > 0) {
    const int want = std::min(remaining, burst_);
    while (true) {
      Clock::duration wait{};
      obs::Counter* waits = nullptr;
      obs::Counter* wait_micros = nullptr;
      {
        MutexLock lock(mutex_);
        if (take_locked(want, wait)) break;
        // Snapshot the counter pointers while the lock is held; the
        // Counters themselves are thread-safe, so bump outside it.
        waits = waits_;
        wait_micros = wait_micros_;
      }
      // Sleep outside the lock so other workers can refill/take.
      const auto nap =
          std::max(wait, Clock::duration(std::chrono::microseconds(50)));
      if (waits != nullptr) {
        waits->add();
        wait_micros->add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(nap)
                .count()));
      }
      std::this_thread::sleep_for(nap);
    }
    remaining -= want;
  }
}

bool RateLimiter::try_acquire(int packets) {
  MMLPT_EXPECTS(packets >= 1);
  if (unlimited()) return true;
  if (packets > burst_) return false;  // can never hold that many at once
  MutexLock lock(mutex_);
  Clock::duration wait{};
  return take_locked(packets, wait);
}

std::uint64_t RateLimiter::granted() const {
  MutexLock lock(mutex_);
  return granted_;
}

}  // namespace mmlpt::orchestrator
