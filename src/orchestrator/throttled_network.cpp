#include "orchestrator/throttled_network.h"

namespace mmlpt::orchestrator {

std::optional<probe::Received> ThrottledNetwork::transact(
    std::span<const std::uint8_t> datagram, probe::Nanos now) {
  limiter_->acquire(1);
  return inner_->transact(datagram, now);
}

std::vector<std::optional<probe::Received>> ThrottledNetwork::transact_batch(
    std::span<const probe::Datagram> batch) {
  if (!batch.empty()) {
    limiter_->acquire(static_cast<int>(batch.size()));
  }
  return inner_->transact_batch(batch);
}

}  // namespace mmlpt::orchestrator
