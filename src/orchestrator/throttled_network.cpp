#include "orchestrator/throttled_network.h"

namespace mmlpt::orchestrator {

std::optional<probe::Received> ThrottledNetwork::transact(
    std::span<const std::uint8_t> datagram, probe::Nanos now) {
  limiter_->acquire(1);
  return inner_->transact(datagram, now);
}

void ThrottledNetwork::submit(std::span<const probe::Datagram> window,
                              probe::Ticket ticket,
                              const probe::SubmitOptions& options) {
  if (!window.empty()) {
    limiter_->acquire(static_cast<int>(window.size()));
  }
  inner_->submit(window, ticket, options);
}

std::vector<probe::Completion> ThrottledNetwork::poll_completions() {
  return inner_->poll_completions();
}

void ThrottledNetwork::cancel(probe::Ticket ticket) { inner_->cancel(ticket); }

std::size_t ThrottledNetwork::pending() const { return inner_->pending(); }

}  // namespace mmlpt::orchestrator
