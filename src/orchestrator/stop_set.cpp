#include "orchestrator/stop_set.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"

namespace mmlpt::orchestrator {

namespace {

/// Deterministic merge for two records of the same destination: keep the
/// cheaper full trace (ties broken on distance) so the outcome does not
/// depend on arrival order.
core::DestinationRecord merge(const core::DestinationRecord& a,
                              const core::DestinationRecord& b) {
  if (a.probes != b.probes) return a.probes < b.probes ? a : b;
  return a.distance <= b.distance ? a : b;
}

}  // namespace

void SharedStopSet::seed(const store::TopologySnapshot& snapshot) {
  for (const auto& hop : snapshot.hops) {
    visible_.insert({hop.addr, hop.distance});
  }
  for (const auto& dest : snapshot.destinations) {
    auto [it, inserted] = visible_destinations_.try_emplace(
        dest.addr, dest.record);
    if (!inserted) it->second = merge(it->second, dest.record);
  }
  // Doubletree's adaptive start TTL: half the median known destination
  // distance, so the backward phase covers the near half of a typical
  // path and the forward phase the far half.
  if (!visible_destinations_.empty()) {
    std::vector<int> distances;
    distances.reserve(visible_destinations_.size());
    for (const auto& [addr, record] : visible_destinations_) {
      distances.push_back(record.distance);
    }
    const auto mid = distances.begin() +
                     static_cast<std::ptrdiff_t>(distances.size() / 2);
    std::nth_element(distances.begin(), mid, distances.end());
    midpoint_ttl_ = std::max(1, *mid / 2);
  }
}

bool SharedStopSet::contains(const net::IpAddress& addr,
                             int distance) const {
  const bool hit = visible_.count({addr, distance}) != 0;
  if (hit && hits_ != nullptr) hits_->add();
  return hit;
}

void SharedStopSet::record(const net::IpAddress& addr, int distance) {
  const Key key{addr, distance};
  if (visible_.count(key) != 0) return;  // already durable
  const MutexLock lock(mutex_);
  // Count only first-time discoveries: bump after the insert says the
  // hop was new, not before (re-recording the same hop is common — every
  // trace crossing it reports it once).
  if (pending_.insert(key).second && records_ != nullptr) records_->add();
}

void SharedStopSet::instrument(obs::MetricsRegistry& registry) {
  hits_ = registry.counter("mmlpt_stop_set_hits_total",
                           "contains() queries answered from the frozen "
                           "visible epoch");
  records_ = registry.counter("mmlpt_stop_set_records_total",
                              "Discoveries recorded into the pending set");
}

std::optional<core::DestinationRecord> SharedStopSet::destination(
    const net::IpAddress& addr) const {
  const auto it = visible_destinations_.find(addr);
  if (it == visible_destinations_.end()) return std::nullopt;
  return it->second;
}

void SharedStopSet::record_destination(
    const net::IpAddress& addr, const core::DestinationRecord& record) {
  if (visible_destinations_.count(addr) != 0) return;  // epoch is frozen
  const MutexLock lock(mutex_);
  auto [it, inserted] = pending_destinations_.try_emplace(addr, record);
  if (!inserted) it->second = merge(it->second, record);
}

int SharedStopSet::midpoint_ttl() const { return midpoint_ttl_; }

store::TopologySnapshot SharedStopSet::delta() const {
  const MutexLock lock(mutex_);
  store::TopologySnapshot snapshot;
  snapshot.hops.reserve(pending_.size());
  for (const auto& [addr, distance] : pending_) {
    snapshot.hops.push_back({addr, distance});
  }
  snapshot.destinations.reserve(pending_destinations_.size());
  for (const auto& [addr, record] : pending_destinations_) {
    snapshot.destinations.push_back({addr, record});
  }
  return snapshot;
}

store::TopologySnapshot SharedStopSet::full_snapshot() const {
  std::set<Key> hops;
  std::map<net::IpAddress, core::DestinationRecord> destinations(
      visible_destinations_.begin(), visible_destinations_.end());
  {
    const MutexLock lock(mutex_);
    hops = pending_;
    for (const auto& [addr, record] : pending_destinations_) {
      auto [it, inserted] = destinations.try_emplace(addr, record);
      if (!inserted) it->second = merge(it->second, record);
    }
  }
  hops.insert(visible_.begin(), visible_.end());

  store::TopologySnapshot snapshot;
  snapshot.hops.reserve(hops.size());
  for (const auto& [addr, distance] : hops) {
    snapshot.hops.push_back({addr, distance});
  }
  snapshot.destinations.reserve(destinations.size());
  for (const auto& [addr, record] : destinations) {
    snapshot.destinations.push_back({addr, record});
  }
  return snapshot;
}

std::uint64_t SharedStopSet::union_digest() const {
  const auto snapshot = full_snapshot();
  std::uint64_t digest = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  const auto mix = [&digest](std::uint8_t byte) {
    digest ^= byte;
    digest *= 0x100000001B3ULL;  // FNV prime
  };
  for (const auto& hop : snapshot.hops) {
    mix(hop.addr.family() == net::Family::kIpv6 ? 6 : 4);
    for (const auto byte : hop.addr.bytes()) mix(byte);
    mix(static_cast<std::uint8_t>(hop.distance & 0xFF));
    mix(static_cast<std::uint8_t>((hop.distance >> 8) & 0xFF));
  }
  return digest;
}

std::size_t SharedStopSet::pending_hop_count() const {
  const MutexLock lock(mutex_);
  return pending_.size();
}

StopSetSession::StopSetSession(std::string cache_path, bool consult)
    : cache_path_(std::move(cache_path)), consult_(consult) {
  if (!active()) return;
  loaded_ = store::TopologyStore::load(cache_path_);
  set_.seed(loaded_.snapshot);
}

void StopSetSession::configure(core::TraceConfig& config) {
  if (!active()) return;
  config.stop_set = &set_;
  config.consult_stop_set = consult_;
}

void StopSetSession::flush() {
  if (!active()) return;
  store::TopologyStore::append(cache_path_, set_.delta());
}

}  // namespace mmlpt::orchestrator
