#include "orchestrator/latency_network.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace mmlpt::orchestrator {

void BlockingLatencyNetwork::block_for(probe::Nanos virtual_rtt) const {
  if (config_.scale <= 0.0 || virtual_rtt == 0) return;
  const auto wall = std::chrono::nanoseconds(static_cast<std::int64_t>(
      static_cast<double>(virtual_rtt) * config_.scale));
  std::this_thread::sleep_for(wall);
}

std::optional<probe::Received> BlockingLatencyNetwork::transact(
    std::span<const std::uint8_t> datagram, probe::Nanos now) {
  auto reply = inner_->transact(datagram, now);
  block_for(reply ? reply->rtt : config_.unanswered_rtt);
  return reply;
}

std::vector<std::optional<probe::Received>>
BlockingLatencyNetwork::transact_batch(
    std::span<const probe::Datagram> batch) {
  auto replies = inner_->transact_batch(batch);
  probe::Nanos slowest = 0;
  for (const auto& reply : replies) {
    slowest = std::max(slowest, reply ? reply->rtt : config_.unanswered_rtt);
  }
  if (!replies.empty()) block_for(slowest);
  return replies;
}

}  // namespace mmlpt::orchestrator
