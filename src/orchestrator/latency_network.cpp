#include "orchestrator/latency_network.h"

#include <algorithm>
#include <thread>

#include "common/assert.h"

namespace mmlpt::orchestrator {

BlockingLatencyNetwork::WallClock::duration BlockingLatencyNetwork::scaled(
    probe::Nanos virtual_rtt) const {
  return scaled_wall(config_.scale, virtual_rtt);
}

void BlockingLatencyNetwork::block_for(probe::Nanos virtual_rtt) const {
  if (config_.scale <= 0.0 || virtual_rtt == 0) return;
  std::this_thread::sleep_for(scaled(virtual_rtt));
}

void BlockingLatencyNetwork::charge_window_cost(std::size_t probes) const {
  const probe::Nanos cost =
      config_.per_window_cost +
      config_.per_probe_cost * static_cast<probe::Nanos>(probes);
  if (cost == 0) return;
  if (config_.wire != nullptr) {
    // One raw socket, one receive loop: concurrent windows pay the fixed
    // cost one after another, not in parallel.
    MutexLock lock(config_.wire->mutex);
    block_for(cost);
    return;
  }
  block_for(cost);
}

std::optional<probe::Received> BlockingLatencyNetwork::transact(
    std::span<const std::uint8_t> datagram, probe::Nanos now) {
  charge_window_cost(1);
  auto reply = inner_->transact(datagram, now);
  block_for(reply ? reply->rtt : config_.unanswered_rtt);
  return reply;
}

void BlockingLatencyNetwork::submit(std::span<const probe::Datagram> window,
                                    probe::Ticket ticket,
                                    const probe::SubmitOptions& options) {
  charge_window_cost(window.size());
  auto& base = bases_[ticket];
  base.submitted = WallClock::now();
  base.outstanding += window.size();
  inner_->submit(window, ticket, options);
}

std::vector<probe::Completion> BlockingLatencyNetwork::poll_completions() {
  // Pull whatever the inner queue has resolved and stamp each completion
  // with its wall-clock due time relative to its window's submission.
  while (inner_->pending() > 0) {
    auto inner = inner_->poll_completions();
    if (inner.empty()) break;
    for (auto& completion : inner) {
      const auto it = bases_.find(completion.ticket);
      MMLPT_ASSERT(it != bases_.end());
      const auto rtt = completion.reply ? completion.reply->rtt
                                        : config_.unanswered_rtt;
      const auto due = completion.canceled
                           ? WallClock::now()
                           : it->second.submitted + scaled(rtt);
      if (--it->second.outstanding == 0) bases_.erase(it);
      held_.push_back(TimedCompletion{std::move(completion), due});
    }
  }
  if (held_.empty()) return {};

  // Sleep until the earliest due completion, then release everything due
  // — a drain of one window blocks for its slowest reply, interleaved
  // tickets surface in arrival order.
  auto earliest = held_.front().due;
  for (const auto& timed : held_) earliest = std::min(earliest, timed.due);
  std::this_thread::sleep_until(earliest);

  const auto now = WallClock::now();
  std::vector<probe::Completion> due_now;
  for (std::size_t i = 0; i < held_.size();) {
    if (held_[i].due <= now) {
      due_now.push_back(std::move(held_[i].completion));
      held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  return due_now;
}

void BlockingLatencyNetwork::cancel(probe::Ticket ticket) {
  inner_->cancel(ticket);
  // Canceled completions surface immediately: drop their latency dues.
  for (auto& timed : held_) {
    if (timed.completion.ticket == ticket) timed.due = WallClock::now();
  }
}

std::size_t BlockingLatencyNetwork::pending() const {
  return inner_->pending() + held_.size();
}

}  // namespace mmlpt::orchestrator
