// Thread-safe streaming JSONL sink with deterministic ordering: workers
// finish destinations in whatever order the scheduler dealt them, but the
// output file must be byte-identical across runs and thread counts. The
// sink therefore holds back out-of-order completions and writes each line
// exactly when it becomes the next contiguous index — streaming (lines
// appear while the fleet is still running) without sacrificing
// reproducibility.
#ifndef MMLPT_ORCHESTRATOR_RESULT_SINK_H
#define MMLPT_ORCHESTRATOR_RESULT_SINK_H

#include <cstddef>
#include <map>
#include <memory>
#include <ostream>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mmlpt::orchestrator {

class ResultSink {
 public:
  struct Options {
    /// Durable streaming: flush the stream AND fsync(2) `fd` after every
    /// emit() that wrote lines, so each committed destination line
    /// survives a crash of the surveying host. `fd` must be the
    /// descriptor behind the stream (see FdJsonlFile); -1 with
    /// fsync_each_line set means flush-only durability (no descriptor
    /// available).
    bool fsync_each_line = false;
    int fd = -1;
  };

  /// The stream must outlive the sink. One sink per output file.
  explicit ResultSink(std::ostream& out) : out_(&out), options_{false, -1} {}
  ResultSink(std::ostream& out, Options options)
      : out_(&out), options_(options) {}
  ~ResultSink() {
    // Best-effort flush; a failed stream already threw from emit()/an
    // explicit flush(), and destructors must not throw.
    try {
      flush();
    } catch (...) {
    }
  }

  ResultSink(const ResultSink&) = delete;
  ResultSink& operator=(const ResultSink&) = delete;

  /// Hand over line `index` (no trailing newline; the sink appends one).
  /// Lines are written in strictly increasing index order; a line arriving
  /// early is buffered until its predecessors land. Each index may be
  /// emitted at most once.
  ///
  /// The ordering guarantee is the sink's own: callers may emit from any
  /// thread in any order. When fed from FleetScheduler's on_result hook
  /// (which already delivers in index order) the buffer simply stays
  /// empty — the sink does not rely on that, so it stays correct for
  /// producers with no ordered delivery of their own.
  void emit(std::size_t index, std::string line);

  /// Flush the underlying stream. Buffered out-of-order lines stay
  /// buffered — they are still waiting for a predecessor. Throws
  /// SystemError when the stream has failed (as does emit()).
  void flush();

  [[nodiscard]] std::size_t lines_written() const;
  /// Completions currently held back waiting for an earlier index.
  [[nodiscard]] std::size_t buffered() const;

 private:
  /// Flush the stream and, in fsync mode, fsync the descriptor; throws
  /// SystemError on failure. Lock held.
  void sync_locked() MMLPT_REQUIRES(mutex_);
  /// Post-write durability step: surface write failures, then sync in
  /// fsync mode. Lock held; only called after lines hit the stream.
  void commit_locked() MMLPT_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::ostream* out_ MMLPT_PT_GUARDED_BY(mutex_);
  Options options_;
  std::size_t next_ MMLPT_GUARDED_BY(mutex_) = 0;
  std::size_t written_ MMLPT_GUARDED_BY(mutex_) = 0;
  std::map<std::size_t, std::string> pending_ MMLPT_GUARDED_BY(mutex_);
};

/// A JSONL output file as a std::ostream over a raw POSIX descriptor —
/// what ResultSink's fsync durability needs (iostreams do not expose
/// their fd). Opens O_WRONLY|O_CREAT|O_TRUNC; writes are unbuffered at
/// the streambuf level (ResultSink writes whole lines, and durability
/// wants them on the way to the kernel immediately). Construction
/// throws SystemError when the file cannot be opened.
class FdJsonlFile {
 public:
  explicit FdJsonlFile(const std::string& path);
  ~FdJsonlFile();

  FdJsonlFile(const FdJsonlFile&) = delete;
  FdJsonlFile& operator=(const FdJsonlFile&) = delete;

  [[nodiscard]] std::ostream& stream() noexcept { return stream_; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  class Buf final : public std::streambuf {
   public:
    explicit Buf(int fd) : fd_(fd) {}

   protected:
    int_type overflow(int_type ch) override;
    std::streamsize xsputn(const char* data, std::streamsize size) override;

   private:
    int fd_;
  };

  int fd_ = -1;
  Buf buf_;
  std::ostream stream_;
};

/// Build the standard per-destination JSONL line:
///   {"index":N,"destination":"<label>","<payload_key>":<payload_json>}
/// The label is JSON-escaped (it may be an arbitrary user-supplied
/// string); `payload_json` is spliced verbatim and must already be valid
/// JSON. Every fleet JSONL producer goes through here so the wire format
/// and its escaping live in one place.
[[nodiscard]] std::string destination_line(std::size_t index,
                                           const std::string& label,
                                           const std::string& payload_key,
                                           const std::string& payload_json);

/// Same, with extra envelope fields spliced between "destination" and the
/// payload key:
///   {"index":N,"destination":"<label>",<extra_fields>,"<key>":<payload>}
/// `extra_fields` must be valid `"key":value` JSON member text without
/// surrounding braces; empty means no extra members (identical bytes to
/// the base overload, so disabled features cost nothing).
[[nodiscard]] std::string destination_line(std::size_t index,
                                           const std::string& label,
                                           const std::string& extra_fields,
                                           const std::string& payload_key,
                                           const std::string& payload_json);

}  // namespace mmlpt::orchestrator

#endif  // MMLPT_ORCHESTRATOR_RESULT_SINK_H
