#include "orchestrator/fleet_transport.h"

#include <algorithm>
#include <thread>

#include "common/assert.h"

namespace mmlpt::orchestrator {

FleetTransportHub::FleetTransportHub(Config config) : config_(config) {}

FleetTransportHub::~FleetTransportHub() {
  // Channels must not outlive the hub (open_channel documents it).
  MMLPT_ASSERT(open_channels_ == 0);
}

std::unique_ptr<FleetTransportHub::Channel> FleetTransportHub::open_channel(
    probe::TransportQueue& backend) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto state = std::make_unique<ChannelState>();
  state->backend = &backend;
  channels_.push_back(std::move(state));
  ++open_channels_;
  // A new contributor arrived: flush conditions must be re-evaluated.
  cv_.notify_all();
  return std::unique_ptr<Channel>(new Channel(*this, *channels_.back()));
}

FleetTransportHub::Stats FleetTransportHub::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void FleetTransportHub::channel_submit(ChannelState& state,
                                       std::span<const probe::Datagram> window,
                                       probe::Ticket ticket,
                                       const probe::SubmitOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  Submission submission;
  submission.window.assign(window.begin(), window.end());
  submission.ticket = ticket;
  submission.options = options;
  state.gathered.push_back(std::move(submission));
  gathered_probes_ += window.size();
  if (!gather_deadline_) {
    gather_deadline_ = WallClock::now() + config_.gather_timeout;
  }
  cv_.notify_all();
}

void FleetTransportHub::release_due_locked(ChannelState& state,
                                           WallClock::time_point now) {
  for (std::size_t i = 0; i < state.timed.size();) {
    if (state.timed[i].due <= now) {
      state.ready.push_back(std::move(state.timed[i].completion));
      state.timed.erase(state.timed.begin() +
                        static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

bool FleetTransportHub::should_flush_locked(WallClock::time_point now) const {
  if (gathered_probes_ == 0) return false;
  // Every open channel is blocked in poll: nobody is left to contribute
  // another window, so waiting longer only adds latency.
  if (polling_ == open_channels_) return true;
  return gather_deadline_ && now >= *gather_deadline_;
}

void FleetTransportHub::run_flush(std::unique_lock<std::mutex>& lock) {
  MMLPT_ASSERT(!flush_in_progress_);
  flush_in_progress_ = true;

  // Snapshot the burst: every gathered window, in channel order, each
  // channel's windows in submission order. The whole backlog goes out —
  // the limiter chunks oversized bursts to its own burst capacity.
  std::vector<BurstItem> burst;
  std::size_t burst_probes = 0;
  std::size_t burst_channels = 0;
  for (auto& channel : channels_) {
    bool contributed = false;
    while (!channel->gathered.empty()) {
      const std::size_t size = channel->gathered.front().window.size();
      BurstItem item;
      item.channel = channel.get();
      item.submission = std::move(channel->gathered.front());
      channel->gathered.pop_front();
      item.backend_ticket = next_backend_ticket_++;
      routes_[item.backend_ticket] = Route{channel.get(),
                                           item.submission.ticket, size,
                                           std::vector<bool>(size, false)};
      channel->in_flight += size;
      burst_probes += size;
      gathered_probes_ -= size;
      contributed = true;
      burst.push_back(std::move(item));
    }
    if (contributed) ++burst_channels;
  }
  MMLPT_ASSERT(gathered_probes_ == 0);
  gather_deadline_.reset();

  if (!burst.empty()) {
    ++stats_.bursts;
    stats_.probes += burst_probes;
    stats_.windows += burst.size();
    if (burst_channels >= 2) ++stats_.merged_bursts;
    stats_.max_channels_in_burst =
        std::max<std::uint64_t>(stats_.max_channels_in_burst, burst_channels);
    stats_.max_probes_in_burst =
        std::max<std::uint64_t>(stats_.max_probes_in_burst, burst_probes);
  }

  lock.unlock();
  try {
    dispatch_burst(burst, burst_probes);
  } catch (...) {
    // A backend failed mid-burst. First scrub the backends while still
    // holding the flush (cancel + drain every ticket of this burst), so
    // no stale completion of an abandoned ticket can surface in a later
    // burst's collection loop; then resolve the burst's unrouted slots
    // as unanswered so the other tracers see timeouts instead of
    // blocking forever. The flusher's own trace gets the exception.
    scrub_backends_after_failure(burst);
    lock.lock();
    abandon_outstanding_locked();
    flush_in_progress_ = false;
    cv_.notify_all();
    throw;
  }
  lock.lock();
  flush_in_progress_ = false;
  cv_.notify_all();
}

void FleetTransportHub::scrub_backends_after_failure(
    std::vector<BurstItem>& burst) noexcept {
  for (auto& item : burst) {
    try {
      item.channel->backend->cancel(item.backend_ticket);
    } catch (...) {
    }
  }
  for (auto& item : burst) {
    try {
      auto* backend = item.channel->backend;
      while (backend->pending() > 0) {
        if (backend->poll_completions().empty()) break;
      }
    } catch (...) {
    }
  }
}

void FleetTransportHub::abandon_outstanding_locked() {
  for (auto& entry : routes_) {
    auto& route = entry.second;
    for (std::size_t slot = 0; slot < route.resolved.size(); ++slot) {
      if (route.resolved[slot]) continue;
      probe::Completion completion;
      completion.ticket = route.caller_ticket;
      completion.slot = slot;
      route.channel->ready.push_back(std::move(completion));
      MMLPT_ASSERT(route.channel->in_flight > 0);
      --route.channel->in_flight;
    }
  }
  routes_.clear();
}

void FleetTransportHub::dispatch_burst(std::vector<BurstItem>& burst,
                                       std::size_t burst_probes) {
  if (!burst.empty()) {
    // One fleet-wide pacing charge for the whole burst: the pps budget
    // is spent by fleet in-flight probes, not per-trace windows.
    if (config_.limiter != nullptr) {
      config_.limiter->acquire(static_cast<int>(burst_probes));
    }
    // The fixed receive-loop pass, paid once per merged burst.
    if (config_.latency_scale > 0.0 && config_.per_burst_cost > 0) {
      std::this_thread::sleep_for(
          scaled_wall(config_.latency_scale, config_.per_burst_cost));
    }

    // Send: dispatch each window to its backend, in gathered order. The
    // flusher is the only thread touching backends (flushes are
    // serialized by flush_in_progress_), so task-private backends need
    // no locking.
    for (auto& item : burst) {
      item.channel->backend->submit(item.submission.window,
                                    item.backend_ticket,
                                    item.submission.options);
    }
    const auto burst_base = WallClock::now();

    // Collect until every slot of this burst resolves, routing
    // completions back incrementally so finished tracers resume while
    // slower windows keep waiting.
    std::vector<probe::TransportQueue*> backends;
    for (const auto& item : burst) {
      if (std::find(backends.begin(), backends.end(),
                    item.channel->backend) == backends.end()) {
        backends.push_back(item.channel->backend);
      }
    }
    std::size_t outstanding = burst_probes;
    while (outstanding > 0) {
      bool progressed = false;
      for (auto* backend : backends) {
        if (backend->pending() == 0) continue;
        auto completions = backend->poll_completions();
        if (completions.empty()) continue;
        progressed = true;
        std::lock_guard<std::mutex> route_lock(mutex_);
        for (auto& completion : completions) {
          const auto it = routes_.find(completion.ticket);
          MMLPT_ASSERT(it != routes_.end());
          ChannelState* channel = it->second.channel;
          probe::Completion out;
          out.ticket = it->second.caller_ticket;
          out.slot = completion.slot;
          out.reply = std::move(completion.reply);
          out.canceled = completion.canceled;
          MMLPT_ASSERT(channel->in_flight > 0);
          --channel->in_flight;
          MMLPT_ASSERT(completion.slot < it->second.resolved.size() &&
                       !it->second.resolved[completion.slot]);
          it->second.resolved[completion.slot] = true;
          if (--it->second.remaining == 0) routes_.erase(it);
          if (config_.latency_scale > 0.0 && !out.canceled) {
            const auto rtt =
                out.reply ? out.reply->rtt : config_.unanswered_rtt;
            channel->timed.push_back(TimedCompletion{
                std::move(out),
                burst_base + scaled_wall(config_.latency_scale, rtt)});
          } else {
            channel->ready.push_back(std::move(out));
          }
          --outstanding;
        }
        cv_.notify_all();
      }
      // Backends resolve every submitted slot (reply, deadline expiry or
      // cancellation); an empty sweep with slots still outstanding is a
      // backend contract violation.
      MMLPT_ASSERT(progressed || outstanding == 0);
    }
  }
}

std::vector<probe::Completion> FleetTransportHub::channel_poll(
    ChannelState& state) {
  std::unique_lock<std::mutex> lock(mutex_);
  MMLPT_ASSERT(!state.in_poll);
  // RAII over the blocked-waiter accounting: run_flush may throw.
  struct PollScope {
    ChannelState& state;
    std::size_t& polling;
    ~PollScope() {
      state.in_poll = false;
      --polling;
    }
  } scope{state, polling_};
  state.in_poll = true;
  ++polling_;
  cv_.notify_all();  // the flush condition may just have become true

  std::vector<probe::Completion> out;
  for (;;) {
    const auto now = WallClock::now();
    release_due_locked(state, now);
    if (!state.ready.empty()) {
      out = std::move(state.ready);
      state.ready.clear();
      break;
    }
    if (state.gathered.empty() && state.in_flight == 0 &&
        state.timed.empty()) {
      break;  // nothing outstanding for this channel
    }
    if (!flush_in_progress_ && should_flush_locked(now)) {
      run_flush(lock);  // this worker becomes the flusher
      continue;
    }
    // Wake for whichever comes first: my earliest latency due, the
    // gather deadline (meaningless while a flush runs — its end
    // notifies), or a notify (delivery / flush end / new channel).
    auto wake = WallClock::time_point::max();
    for (const auto& timed : state.timed) {
      wake = std::min(wake, timed.due);
    }
    if (!flush_in_progress_ && gathered_probes_ > 0 && gather_deadline_) {
      wake = std::min(wake, *gather_deadline_);
    }
    if (wake == WallClock::time_point::max()) {
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock, wake);
    }
  }
  return out;
}

void FleetTransportHub::channel_cancel(ChannelState& state,
                                       probe::Ticket ticket) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < state.gathered.size();) {
    if (state.gathered[i].ticket != ticket) {
      ++i;
      continue;
    }
    const auto& window = state.gathered[i].window;
    for (std::size_t slot = 0; slot < window.size(); ++slot) {
      probe::Completion completion;
      completion.ticket = ticket;
      completion.slot = slot;
      completion.canceled = true;
      state.ready.push_back(std::move(completion));
    }
    gathered_probes_ -= window.size();
    state.gathered.erase(state.gathered.begin() +
                         static_cast<std::ptrdiff_t>(i));
  }
  if (gathered_probes_ == 0) gather_deadline_.reset();
  cv_.notify_all();
}

std::size_t FleetTransportHub::channel_pending(
    const ChannelState& state) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t gathered = 0;
  for (const auto& submission : state.gathered) {
    gathered += submission.window.size();
  }
  return gathered + state.in_flight + state.timed.size() +
         state.ready.size();
}

void FleetTransportHub::close_channel(ChannelState& state) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Un-gather anything a dying trace left behind: nobody will ever poll
  // for it, so it must not reach the wire.
  for (const auto& submission : state.gathered) {
    gathered_probes_ -= submission.window.size();
  }
  state.gathered.clear();
  if (gathered_probes_ == 0) gather_deadline_.reset();
  // A trace abandoned mid-window (exception) may still have slots on the
  // wire; wait them out — and wait out the whole flush, which may still
  // touch this channel's backend — so the flusher never routes to a dead
  // channel. Count as "polling" meanwhile: this channel contributes
  // nothing more, so it must not hold up the flush condition for
  // everyone else; but never BECOME the flusher here, only wait.
  ++polling_;
  state.in_poll = true;
  cv_.notify_all();
  cv_.wait(lock, [&] { return state.in_flight == 0 && !flush_in_progress_; });
  state.in_poll = false;
  --polling_;
  const auto it = std::find_if(
      channels_.begin(), channels_.end(),
      [&](const std::unique_ptr<ChannelState>& candidate) {
        return candidate.get() == &state;
      });
  MMLPT_ASSERT(it != channels_.end());
  channels_.erase(it);
  --open_channels_;
  cv_.notify_all();
}

FleetTransportHub::Channel::~Channel() { hub_->close_channel(*state_); }

std::optional<probe::Received> FleetTransportHub::Channel::transact(
    std::span<const std::uint8_t> datagram, probe::Nanos now) {
  const probe::Datagram window[] = {
      probe::Datagram{{datagram.begin(), datagram.end()}, now}};
  auto replies = transact_batch(window);
  return std::move(replies.front());
}

void FleetTransportHub::Channel::submit(
    std::span<const probe::Datagram> window, probe::Ticket ticket,
    const probe::SubmitOptions& options) {
  hub_->channel_submit(*state_, window, ticket, options);
}

std::vector<probe::Completion>
FleetTransportHub::Channel::poll_completions() {
  return hub_->channel_poll(*state_);
}

void FleetTransportHub::Channel::cancel(probe::Ticket ticket) {
  hub_->channel_cancel(*state_, ticket);
}

std::size_t FleetTransportHub::Channel::pending() const {
  return hub_->channel_pending(*state_);
}

}  // namespace mmlpt::orchestrator
