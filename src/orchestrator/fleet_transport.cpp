#include "orchestrator/fleet_transport.h"

#include <algorithm>
#include <thread>

#include "common/assert.h"
#include "obs/trace_events.h"

namespace mmlpt::orchestrator {

void FleetTransportHub::register_metrics() {
  obs::MetricsRegistry& registry =
      config_.metrics != nullptr ? *config_.metrics : fallback_metrics_;
  bursts_ = registry.counter("mmlpt_hub_bursts_total",
                             "Merged fleet bursts staged for the wire");
  probes_ = registry.counter("mmlpt_hub_probes_total",
                             "Probes carried by fleet bursts");
  windows_ = registry.counter("mmlpt_hub_windows_total",
                              "Per-trace windows merged into bursts");
  merged_bursts_ =
      registry.counter("mmlpt_hub_merged_bursts_total",
                       "Bursts carrying windows of >= 2 distinct channels");
  overlapped_bursts_ = registry.counter(
      "mmlpt_hub_overlapped_bursts_total",
      "Bursts dispatched over a predecessor still on the wire");
  max_channels_in_burst_ =
      registry.gauge("mmlpt_hub_max_channels_in_burst",
                     "Most distinct channels merged into one burst");
  max_probes_in_burst_ = registry.gauge(
      "mmlpt_hub_max_probes_in_burst", "Most probes carried by one burst");
  max_bursts_in_flight_ =
      registry.gauge("mmlpt_hub_max_bursts_in_flight",
                     "Deepest pipeline overlap reached (bursts on the wire)");
  const std::vector<double> size_bounds{1, 2, 4, 8, 16, 32, 64, 128, 256};
  burst_probes_hist_ = registry.histogram(
      "mmlpt_hub_burst_probes", "Probes per merged burst", size_bounds);
  burst_channels_hist_ =
      registry.histogram("mmlpt_hub_burst_channels",
                         "Distinct channels per merged burst", size_bounds);
}

FleetTransportHub::FleetTransportHub(Config config) : config_(config) {
  MMLPT_EXPECTS(config_.pipeline_depth >= 1);
  register_metrics();
}

FleetTransportHub::~FleetTransportHub() {
  // Channels must not outlive the hub (open_channel documents it). The
  // lock is uncontended here — it only satisfies the guarded-field
  // discipline for the assert's read.
  MutexLock lock(mutex_);
  MMLPT_ASSERT(open_channels_ == 0);
}

std::unique_ptr<FleetTransportHub::Channel> FleetTransportHub::open_channel(
    probe::TransportQueue& backend) {
  MutexLock lock(mutex_);
  auto state = std::make_unique<ChannelState>();
  state->backend = &backend;
  channels_.push_back(std::move(state));
  ++open_channels_;
  // A new contributor arrived: staging conditions must be re-evaluated.
  cv_.notify_all();
  return std::unique_ptr<Channel>(new Channel(*this, *channels_.back()));
}

FleetTransportHub::Stats FleetTransportHub::stats() const {
  return Stats{bursts_->value(),
               probes_->value(),
               windows_->value(),
               merged_bursts_->value(),
               static_cast<std::uint64_t>(max_channels_in_burst_->value()),
               static_cast<std::uint64_t>(max_probes_in_burst_->value()),
               overlapped_bursts_->value(),
               static_cast<std::uint64_t>(max_bursts_in_flight_->value())};
}

void FleetTransportHub::channel_submit(ChannelState& state,
                                       std::span<const probe::Datagram> window,
                                       probe::Ticket ticket,
                                       const probe::SubmitOptions& options) {
  MutexLock lock(mutex_);
  Submission submission;
  submission.window.assign(window.begin(), window.end());
  submission.ticket = ticket;
  submission.options = options;
  state.gathered.push_back(std::move(submission));
  gathered_probes_ += window.size();
  if (!gather_deadline_) {
    gather_deadline_ = WallClock::now() + config_.gather_timeout;
  }
  cv_.notify_all();
}

void FleetTransportHub::release_due_locked(ChannelState& state,
                                           WallClock::time_point now) {
  for (std::size_t i = 0; i < state.timed.size();) {
    if (state.timed[i].due <= now) {
      state.ready.push_back(std::move(state.timed[i].completion));
      state.timed.erase(state.timed.begin() +
                        static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

bool FleetTransportHub::can_stage_locked(WallClock::time_point now) const {
  if (gathered_probes_ == 0) return false;
  // Pipeline discipline: at most pipeline_depth bursts staged/on-wire.
  if (bursts_in_flight_locked() >=
      static_cast<std::size_t>(config_.pipeline_depth)) {
    return false;
  }
  // Every open channel is blocked in poll: nobody is left to contribute
  // another window, so waiting longer only adds latency.
  if (polling_ == open_channels_) return true;
  return gather_deadline_ && now >= *gather_deadline_;
}

void FleetTransportHub::stage_burst_locked() {
  // Snapshot the burst: every gathered window, in channel order, each
  // channel's windows in submission order. The whole backlog goes out —
  // the limiter chunks oversized bursts to its own burst capacity.
  StagedBurst burst;
  burst.id = next_burst_id_++;
  std::size_t burst_channels = 0;
  for (auto& channel : channels_) {
    bool contributed = false;
    while (!channel->gathered.empty()) {
      const std::size_t size = channel->gathered.front().window.size();
      BurstItem item;
      item.channel = channel.get();
      item.submission = std::move(channel->gathered.front());
      channel->gathered.pop_front();
      item.backend_ticket = next_backend_ticket_++;
      Route route;
      route.channel = channel.get();
      route.caller_ticket = item.submission.ticket;
      route.remaining = size;
      route.resolved.assign(size, false);
      route.burst = burst.id;
      routes_[item.backend_ticket] = std::move(route);
      channel->in_flight += size;
      burst.probes += size;
      gathered_probes_ -= size;
      contributed = true;
      burst.items.push_back(std::move(item));
    }
    if (contributed) ++burst_channels;
  }
  MMLPT_ASSERT(gathered_probes_ == 0);
  gather_deadline_.reset();

  if (burst.items.empty()) return;
  bursts_->add();
  probes_->add(burst.probes);
  windows_->add(burst.items.size());
  if (burst_channels >= 2) merged_bursts_->add();
  max_channels_in_burst_->record_max(
      static_cast<std::int64_t>(burst_channels));
  max_probes_in_burst_->record_max(static_cast<std::int64_t>(burst.probes));
  burst_probes_hist_->observe(static_cast<double>(burst.probes));
  burst_channels_hist_->observe(static_cast<double>(burst_channels));
  obs::instant("burst_staged", "hub",
               {{"probes", static_cast<double>(burst.probes)},
                {"windows", static_cast<double>(burst.items.size())},
                {"channels", static_cast<double>(burst_channels)}});
  staged_.push_back(std::move(burst));
  cv_.notify_all();
}

FleetTransportHub::WallClock::time_point FleetTransportHub::dispatch_burst(
    StagedBurst& burst) {
  obs::Span span("burst_dispatch", "hub");
  span.arg("probes", static_cast<double>(burst.probes));
  span.arg("windows", static_cast<double>(burst.items.size()));
  // One fleet-wide pacing charge for the whole burst: the pps budget is
  // spent by fleet in-flight probes, not per-trace windows.
  if (config_.limiter != nullptr) {
    config_.limiter->acquire(static_cast<int>(burst.probes));
  }
  // The fixed receive-loop pass (once per merged burst) plus the
  // transport's per-probe submission tax.
  if (config_.latency_scale > 0.0) {
    const probe::Nanos cost =
        config_.per_burst_cost +
        config_.per_probe_cost * static_cast<probe::Nanos>(burst.probes);
    if (cost > 0) {
      std::this_thread::sleep_for(scaled_wall(config_.latency_scale, cost));
    }
  }
  // Send: dispatch each window to its backend, in gathered order. The
  // wire owner is the only thread touching backends, so task-private
  // backends need no locking.
  for (auto& item : burst.items) {
    item.channel->backend->submit(item.submission.window, item.backend_ticket,
                                  item.submission.options);
  }
  return WallClock::now();
}

void FleetTransportHub::sweep_backends(MutexLock& lock) {
  // Backends holding dispatched, unrouted slots — collected under the
  // lock, polled outside it.
  std::vector<probe::TransportQueue*> backends;
  for (const auto& entry : routes_) {
    if (!entry.second.dispatched) continue;
    auto* backend = entry.second.channel->backend;
    if (std::find(backends.begin(), backends.end(), backend) ==
        backends.end()) {
      backends.push_back(backend);
    }
  }
  if (backends.empty()) return;

  lock.unlock();
  bool progressed = false;
  obs::Span span("burst_demux", "hub");
  try {
    for (auto* backend : backends) {
      if (backend->pending() == 0) continue;
      auto completions = backend->poll_completions();
      if (completions.empty()) continue;
      progressed = true;
      MutexLock route_lock(mutex_);
      for (auto& completion : completions) {
        const auto it = routes_.find(completion.ticket);
        MMLPT_ASSERT(it != routes_.end());
        Route& route = it->second;
        ChannelState* channel = route.channel;
        probe::Completion out;
        out.ticket = route.caller_ticket;
        out.slot = completion.slot;
        out.reply = std::move(completion.reply);
        out.canceled = completion.canceled;
        MMLPT_ASSERT(channel->in_flight > 0);
        --channel->in_flight;
        MMLPT_ASSERT(completion.slot < route.resolved.size() &&
                     !route.resolved[completion.slot]);
        route.resolved[completion.slot] = true;
        MMLPT_ASSERT(dispatched_unrouted_ > 0);
        --dispatched_unrouted_;
        const auto unrouted = burst_unrouted_.find(route.burst);
        MMLPT_ASSERT(unrouted != burst_unrouted_.end());
        if (--unrouted->second == 0) burst_unrouted_.erase(unrouted);
        if (config_.latency_scale > 0.0 && !out.canceled) {
          const auto rtt = out.reply ? out.reply->rtt : config_.unanswered_rtt;
          channel->timed.push_back(TimedCompletion{
              std::move(out),
              route.base + scaled_wall(config_.latency_scale, rtt)});
        } else {
          channel->ready.push_back(std::move(out));
        }
        if (--route.remaining == 0) routes_.erase(it);
      }
      cv_.notify_all();
    }
  } catch (...) {
    lock.lock();
    throw;
  }
  lock.lock();
  // Backends resolve every submitted slot (reply, deadline expiry or
  // cancellation); an empty sweep with slots still outstanding is a
  // backend contract violation.
  MMLPT_ASSERT(progressed || dispatched_unrouted_ == 0);
}

void FleetTransportHub::drive_wire(MutexLock& lock,
                                   const std::function<bool()>& stop) {
  MMLPT_ASSERT(!wire_owner_);
  wire_owner_ = true;
  for (;;) {
    if (stop && stop()) break;
    if (!staged_.empty()) {
      StagedBurst burst = std::move(staged_.front());
      staged_.pop_front();
      if (!burst_unrouted_.empty()) overlapped_bursts_->add();
      burst_unrouted_[burst.id] = burst.probes;
      max_bursts_in_flight_->record_max(
          static_cast<std::int64_t>(burst_unrouted_.size()));
      dispatched_unrouted_ += burst.probes;
      for (const auto& item : burst.items) {
        routes_.at(item.backend_ticket).dispatched = true;
      }
      lock.unlock();
      WallClock::time_point base;
      try {
        base = dispatch_burst(burst);
      } catch (...) {
        lock.lock();
        fail_wire_locked(lock);
        throw;
      }
      lock.lock();
      for (const auto& item : burst.items) {
        const auto it = routes_.find(item.backend_ticket);
        if (it != routes_.end()) it->second.base = base;
      }
      cv_.notify_all();
      continue;
    }
    if (dispatched_unrouted_ == 0) break;  // wire idle
    try {
      sweep_backends(lock);
    } catch (...) {
      fail_wire_locked(lock);
      throw;
    }
  }
  wire_owner_ = false;
  cv_.notify_all();
}

void FleetTransportHub::fail_wire_locked(MutexLock& lock) {
  // Scrub the backends first (cancel + drain every dispatched ticket),
  // so no stale completion of an abandoned ticket can surface in a later
  // sweep; the backends are still exclusively ours — wire_owner_ stays
  // set until the end.
  std::vector<std::pair<probe::TransportQueue*, probe::Ticket>> dispatched;
  std::vector<probe::TransportQueue*> backends;
  for (const auto& entry : routes_) {
    if (!entry.second.dispatched) continue;
    auto* backend = entry.second.channel->backend;
    dispatched.emplace_back(backend, entry.first);
    if (std::find(backends.begin(), backends.end(), backend) ==
        backends.end()) {
      backends.push_back(backend);
    }
  }
  lock.unlock();
  for (const auto& [backend, ticket] : dispatched) {
    try {
      backend->cancel(ticket);
    } catch (...) {
    }
  }
  for (auto* backend : backends) {
    try {
      while (backend->pending() > 0) {
        if (backend->poll_completions().empty()) break;
      }
    } catch (...) {
    }
  }
  lock.lock();
  // Resolve every unrouted slot — dispatched and merely staged alike —
  // as unanswered so the other tracers see timeouts instead of blocking
  // forever. The thread that hit the failure gets the exception.
  abandon_outstanding_locked();
  staged_.clear();
  burst_unrouted_.clear();
  dispatched_unrouted_ = 0;
  wire_owner_ = false;
  cv_.notify_all();
}

void FleetTransportHub::abandon_outstanding_locked() {
  for (auto& entry : routes_) {
    auto& route = entry.second;
    for (std::size_t slot = 0; slot < route.resolved.size(); ++slot) {
      if (route.resolved[slot]) continue;
      probe::Completion completion;
      completion.ticket = route.caller_ticket;
      completion.slot = slot;
      route.channel->ready.push_back(std::move(completion));
      MMLPT_ASSERT(route.channel->in_flight > 0);
      --route.channel->in_flight;
    }
  }
  routes_.clear();
}

bool FleetTransportHub::poll_stop_check(ChannelState& state) {
  // Wire-owner context only: drive_wire calls this with mutex_ held.
  release_due_locked(state, WallClock::now());
  return !state.ready.empty();
}

std::vector<probe::Completion> FleetTransportHub::channel_poll(
    ChannelState& state) {
  MutexLock lock(mutex_);
  MMLPT_ASSERT(!state.in_poll);
  // RAII over the blocked-waiter accounting: drive_wire may throw.
  struct PollScope {
    ChannelState& state;
    std::size_t& polling;
    ~PollScope() {
      state.in_poll = false;
      --polling;
    }
  } scope{state, polling_};
  state.in_poll = true;
  ++polling_;
  cv_.notify_all();  // the staging condition may just have become true

  std::vector<probe::Completion> out;
  for (;;) {
    const auto now = WallClock::now();
    release_due_locked(state, now);
    if (!state.ready.empty()) {
      out = std::move(state.ready);
      state.ready.clear();
      break;
    }
    if (state.gathered.empty() && state.in_flight == 0 &&
        state.timed.empty()) {
      break;  // nothing outstanding for this channel
    }
    if (can_stage_locked(now)) {
      stage_burst_locked();
      continue;
    }
    if (!wire_owner_ && (!staged_.empty() || dispatched_unrouted_ > 0)) {
      // This worker becomes the wire owner; it hands the receive loop
      // back as soon as its own completions are ready.
      drive_wire(lock, [&] { return poll_stop_check(state); });
      continue;
    }
    // Wake for whichever comes first: my earliest latency due, the
    // gather deadline (meaningless while the pipeline is full — a burst
    // resolving notifies), or a notify (delivery / wire release / new
    // channel).
    auto wake = WallClock::time_point::max();
    for (const auto& timed : state.timed) {
      wake = std::min(wake, timed.due);
    }
    if (gathered_probes_ > 0 && gather_deadline_ &&
        bursts_in_flight_locked() <
            static_cast<std::size_t>(config_.pipeline_depth)) {
      wake = std::min(wake, *gather_deadline_);
    }
    if (wake == WallClock::time_point::max()) {
      cv_.wait(mutex_);
    } else {
      cv_.wait_until(mutex_, wake);
    }
  }
  return out;
}

void FleetTransportHub::channel_cancel(ChannelState& state,
                                       probe::Ticket ticket) {
  MutexLock lock(mutex_);
  for (std::size_t i = 0; i < state.gathered.size();) {
    if (state.gathered[i].ticket != ticket) {
      ++i;
      continue;
    }
    const auto& window = state.gathered[i].window;
    for (std::size_t slot = 0; slot < window.size(); ++slot) {
      probe::Completion completion;
      completion.ticket = ticket;
      completion.slot = slot;
      completion.canceled = true;
      state.ready.push_back(std::move(completion));
    }
    gathered_probes_ -= window.size();
    state.gathered.erase(state.gathered.begin() +
                         static_cast<std::ptrdiff_t>(i));
  }
  if (gathered_probes_ == 0) gather_deadline_.reset();
  cv_.notify_all();
}

std::size_t FleetTransportHub::channel_pending(
    const ChannelState& state) const {
  MutexLock lock(mutex_);
  std::size_t gathered = 0;
  for (const auto& submission : state.gathered) {
    gathered += submission.window.size();
  }
  return gathered + state.in_flight + state.timed.size() +
         state.ready.size();
}

void FleetTransportHub::close_channel(ChannelState& state) {
  MutexLock lock(mutex_);
  // Un-gather anything a dying trace left behind: nobody will ever poll
  // for it, so it must not reach the wire. (Staged windows are past the
  // point of no return — they are waited out below like dispatched
  // ones.)
  for (const auto& submission : state.gathered) {
    gathered_probes_ -= submission.window.size();
  }
  state.gathered.clear();
  if (gathered_probes_ == 0) gather_deadline_.reset();
  // A trace abandoned mid-window (exception) may still have slots on the
  // wire; wait them out — and wait out the wire owner, whose current
  // sweep may still touch this channel's backend — so completions are
  // never routed to a dead channel. Count as "polling" meanwhile: this
  // channel contributes nothing more, so it must not hold up the staging
  // condition for everyone else. Unlike the old flusher discipline, the
  // closer may have to DRIVE the wire itself: its slots may sit in a
  // staged burst no other worker is awake to dispatch.
  ++polling_;
  state.in_poll = true;
  cv_.notify_all();
  for (;;) {
    if (state.in_flight == 0 && !wire_owner_) break;
    if (!wire_owner_ && (!staged_.empty() || dispatched_unrouted_ > 0)) {
      try {
        drive_wire(lock, [&] { return state.in_flight == 0; });
      } catch (...) {
        // Destructor context: fail_wire_locked already resolved every
        // outstanding slot (ours included); nothing to rethrow into.
      }
      continue;
    }
    cv_.wait(mutex_);
  }
  state.in_poll = false;
  --polling_;
  const auto it = std::find_if(
      channels_.begin(), channels_.end(),
      [&](const std::unique_ptr<ChannelState>& candidate) {
        return candidate.get() == &state;
      });
  MMLPT_ASSERT(it != channels_.end());
  channels_.erase(it);
  --open_channels_;
  cv_.notify_all();
}

FleetTransportHub::Channel::~Channel() { hub_->close_channel(*state_); }

std::optional<probe::Received> FleetTransportHub::Channel::transact(
    std::span<const std::uint8_t> datagram, probe::Nanos now) {
  const probe::Datagram window[] = {
      probe::Datagram{{datagram.begin(), datagram.end()}, now}};
  auto replies = transact_batch(window);
  return std::move(replies.front());
}

void FleetTransportHub::Channel::submit(
    std::span<const probe::Datagram> window, probe::Ticket ticket,
    const probe::SubmitOptions& options) {
  hub_->channel_submit(*state_, window, ticket, options);
}

std::vector<probe::Completion>
FleetTransportHub::Channel::poll_completions() {
  return hub_->channel_poll(*state_);
}

void FleetTransportHub::Channel::cancel(probe::Ticket ticket) {
  hub_->channel_cancel(*state_, ticket);
}

std::size_t FleetTransportHub::Channel::pending() const {
  return hub_->channel_pending(*state_);
}

}  // namespace mmlpt::orchestrator
