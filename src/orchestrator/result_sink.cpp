#include "orchestrator/result_sink.h"

#include "common/assert.h"
#include "common/error.h"
#include "common/json.h"

namespace mmlpt::orchestrator {

void ResultSink::emit(std::size_t index, std::string line) {
  std::lock_guard<std::mutex> lock(mutex_);
  MMLPT_EXPECTS(index >= next_);  // each index emitted at most once
  if (index != next_) {
    const bool inserted = pending_.emplace(index, std::move(line)).second;
    MMLPT_EXPECTS(inserted);
    return;
  }
  *out_ << line << '\n';
  ++written_;
  ++next_;
  // Drain the contiguous prefix that this line unblocked.
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == next_;) {
    *out_ << it->second << '\n';
    ++written_;
    ++next_;
    it = pending_.erase(it);
  }
  // Surface write failures (disk full, closed fd) instead of silently
  // truncating the JSONL — the scheduler propagates this as a run
  // failure.
  if (!out_->good()) {
    throw SystemError("ResultSink: output stream write failed");
  }
}

void ResultSink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  out_->flush();
  if (!out_->good()) {
    throw SystemError("ResultSink: output stream flush failed");
  }
}

std::size_t ResultSink::lines_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return written_;
}

std::size_t ResultSink::buffered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

std::string destination_line(std::size_t index, const std::string& label,
                             const std::string& payload_key,
                             const std::string& payload_json) {
  std::string line = "{\"index\":";
  line += std::to_string(index);
  line += ",\"destination\":\"";
  line += JsonWriter::escape(label);
  line += "\",\"";
  line += JsonWriter::escape(payload_key);
  line += "\":";
  line += payload_json;
  line += "}";
  return line;
}

}  // namespace mmlpt::orchestrator
