#include "orchestrator/result_sink.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/assert.h"
#include "common/error.h"
#include "common/json.h"

namespace mmlpt::orchestrator {

void ResultSink::sync_locked() {
  out_->flush();
  if (!out_->good()) {
    throw SystemError("ResultSink: output stream flush failed");
  }
  if (options_.fsync_each_line && options_.fd >= 0 &&
      ::fsync(options_.fd) != 0) {
    throw SystemError(std::string("ResultSink: fsync failed: ") +
                      std::strerror(errno));
  }
}

void ResultSink::commit_locked() {
  // Surface write failures (disk full, closed fd) instead of silently
  // truncating the JSONL — the scheduler propagates this as a run
  // failure.
  if (!out_->good()) {
    throw SystemError("ResultSink: output stream write failed");
  }
  if (options_.fsync_each_line) sync_locked();
}

void ResultSink::emit(std::size_t index, std::string line) {
  MutexLock lock(mutex_);
  MMLPT_EXPECTS(index >= next_);  // each index emitted at most once
  if (index != next_) {
    // Held back for an earlier index: nothing hit the stream, so there
    // is nothing to flush or fsync yet.
    const bool inserted = pending_.emplace(index, std::move(line)).second;
    MMLPT_EXPECTS(inserted);
    return;
  }
  *out_ << line << '\n';
  ++written_;
  ++next_;
  // Drain the contiguous prefix that this line unblocked.
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == next_;) {
    *out_ << it->second << '\n';
    ++written_;
    ++next_;
    it = pending_.erase(it);
  }
  commit_locked();
}

void ResultSink::flush() {
  MutexLock lock(mutex_);
  sync_locked();
}

std::size_t ResultSink::lines_written() const {
  MutexLock lock(mutex_);
  return written_;
}

std::size_t ResultSink::buffered() const {
  MutexLock lock(mutex_);
  return pending_.size();
}

std::string destination_line(std::size_t index, const std::string& label,
                             const std::string& payload_key,
                             const std::string& payload_json) {
  return destination_line(index, label, std::string(), payload_key,
                          payload_json);
}

std::string destination_line(std::size_t index, const std::string& label,
                             const std::string& extra_fields,
                             const std::string& payload_key,
                             const std::string& payload_json) {
  std::string line = "{\"index\":";
  line += std::to_string(index);
  line += ",\"destination\":\"";
  line += JsonWriter::escape(label);
  line += "\",";
  if (!extra_fields.empty()) {
    line += extra_fields;
    line += ',';
  }
  line += '"';
  line += JsonWriter::escape(payload_key);
  line += "\":";
  line += payload_json;
  line += "}";
  return line;
}

FdJsonlFile::Buf::int_type FdJsonlFile::Buf::overflow(int_type ch) {
  if (traits_type::eq_int_type(ch, traits_type::eof())) {
    return traits_type::not_eof(ch);
  }
  const char byte = traits_type::to_char_type(ch);
  return xsputn(&byte, 1) == 1 ? ch : traits_type::eof();
}

std::streamsize FdJsonlFile::Buf::xsputn(const char* data,
                                         std::streamsize size) {
  std::streamsize written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd_, data + written,
                              static_cast<std::size_t>(size - written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return written;  // short write -> the stream's badbit
    }
    written += n;
  }
  return written;
}

FdJsonlFile::FdJsonlFile(const std::string& path)
    : fd_(::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644)),
      buf_(fd_),
      stream_(&buf_) {
  if (fd_ < 0) {
    throw SystemError("cannot open output file: " + path + ": " +
                      std::strerror(errno));
  }
}

FdJsonlFile::~FdJsonlFile() {
  if (fd_ >= 0) ::close(fd_);
}

}  // namespace mmlpt::orchestrator
