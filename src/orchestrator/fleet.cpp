#include "orchestrator/fleet.h"

namespace mmlpt::orchestrator {

FleetScheduler::FleetScheduler(FleetConfig config)
    : config_(config), base_rng_(config.seed) {
  MMLPT_EXPECTS(config_.jobs >= 1);
  if (config_.pps > 0.0) {
    limiter_ = std::make_unique<RateLimiter>(config_.pps, config_.burst);
    if (config_.metrics != nullptr) {
      limiter_->instrument(*config_.metrics, "fleet");
    }
  }
  if (config_.merge_windows) {
    FleetTransportHub::Config hub_config;
    hub_config.limiter = limiter_.get();
    hub_config.pipeline_depth = config_.pipeline_depth;
    hub_config.metrics = config_.metrics;
    hub_ = std::make_unique<FleetTransportHub>(hub_config);
  }
}

}  // namespace mmlpt::orchestrator
