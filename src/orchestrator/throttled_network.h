// Network decorator that charges every outgoing probe against a shared
// fleet-wide RateLimiter before handing it to the inner transport. Each
// worker wraps its own transport instance around the ONE limiter the
// scheduler owns — that is how "packets per second" means fleet packets,
// not per-worker packets.
#ifndef MMLPT_ORCHESTRATOR_THROTTLED_NETWORK_H
#define MMLPT_ORCHESTRATOR_THROTTLED_NETWORK_H

#include "orchestrator/rate_limiter.h"
#include "probe/network.h"

namespace mmlpt::orchestrator {

class ThrottledNetwork final : public probe::Network {
 public:
  /// Both the inner transport and the limiter must outlive this decorator.
  ThrottledNetwork(probe::Network& inner, RateLimiter& limiter)
      : inner_(&inner), limiter_(&limiter) {}

  [[nodiscard]] std::optional<probe::Received> transact(
      std::span<const std::uint8_t> datagram, probe::Nanos now) override;

  /// A window of N probes costs N tokens up front (chunked to the burst
  /// size by the limiter), then ships as one inner batch.
  [[nodiscard]] std::vector<std::optional<probe::Received>> transact_batch(
      std::span<const probe::Datagram> batch) override;

 private:
  probe::Network* inner_;
  RateLimiter* limiter_;
};

}  // namespace mmlpt::orchestrator

#endif  // MMLPT_ORCHESTRATOR_THROTTLED_NETWORK_H
