// Transport decorator that charges every outgoing probe against a shared
// fleet-wide RateLimiter before handing it to the inner transport. Each
// worker wraps its own transport instance around the ONE limiter the
// scheduler owns — that is how "packets per second" means fleet packets,
// not per-worker packets.
//
// On the submit/completion seam the charge happens at submit() time —
// one token per probe in the submitted window, paid up front and chunked
// to the burst size by the limiter. Completions pass through untouched,
// so the token count is a pure function of what was submitted, no matter
// how completions interleave across merged traces.
#ifndef MMLPT_ORCHESTRATOR_THROTTLED_NETWORK_H
#define MMLPT_ORCHESTRATOR_THROTTLED_NETWORK_H

#include "orchestrator/rate_limiter.h"
#include "probe/network.h"

namespace mmlpt::orchestrator {

class ThrottledNetwork final : public probe::Network {
 public:
  /// Both the inner transport and the limiter must outlive this decorator.
  ThrottledNetwork(probe::Network& inner, RateLimiter& limiter)
      : inner_(&inner), limiter_(&limiter) {}

  [[nodiscard]] std::optional<probe::Received> transact(
      std::span<const std::uint8_t> datagram, probe::Nanos now) override;

  /// A window of N probes costs N tokens at submit, then ships as one
  /// inner submission; poll/cancel forward untouched.
  void submit(std::span<const probe::Datagram> window, probe::Ticket ticket,
              const probe::SubmitOptions& options) override;
  using probe::Network::submit;
  [[nodiscard]] std::vector<probe::Completion> poll_completions() override;
  void cancel(probe::Ticket ticket) override;
  [[nodiscard]] std::size_t pending() const override;

 private:
  probe::Network* inner_;
  RateLimiter* limiter_;
};

}  // namespace mmlpt::orchestrator

#endif  // MMLPT_ORCHESTRATOR_THROTTLED_NETWORK_H
