// FleetScheduler: the survey-scale engine. N destination traces run
// concurrently over a pool of `jobs` worker threads; every task owns its
// whole probing stack (simulator, transport, ProbeEngine) and a
// deterministically forked RNG stream, so a fleet run is a pure function
// of (inputs, seed) — the thread count only changes wall-clock time,
// never results.
//
// Determinism contract:
//   * Task i's randomness comes from Rng(seed).fork(i) — independent of
//     which worker runs it and of how many draws other tasks made.
//   * Results are collected per task index; `on_result` fires in strict
//     index order (a reorder buffer holds back early finishers), so
//     streaming output and join-time merges see the serial order.
//   * jobs=1 runs every task inline on the calling thread in index
//     order: bit-for-bit the behaviour of the old serial loops.
//
// The shared RateLimiter (config.pps > 0) bounds the SUM of all workers'
// probe traffic; workers wrap their transports in ThrottledNetwork
// against limiter().
//
// Lifetime / re-entrancy: a FleetScheduler is NOT tied to a single run.
// run() and run_streaming() keep every piece of mutable state local to
// the call (base_rng_ is only fork()ed, never drawn from; the limiter
// and hub are internally synchronized), so a long-lived scheduler — the
// mmlptd daemon owns exactly one — may execute MANY runs concurrently
// from different threads. Each run's determinism still holds
// independently: task i of a run draws from Rng(config.seed).fork(i)
// regardless of what other runs are in flight.
#ifndef MMLPT_ORCHESTRATOR_FLEET_H
#define MMLPT_ORCHESTRATOR_FLEET_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/assert.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "orchestrator/fleet_transport.h"
#include "orchestrator/rate_limiter.h"

namespace mmlpt::orchestrator {

struct FleetConfig {
  /// Worker threads. 1 = serial on the calling thread (no threads spawned).
  int jobs = 1;
  /// Base seed; task i draws from Rng(seed).fork(i).
  std::uint64_t seed = 1;
  /// Fleet-wide probe budget in packets/second; <= 0 = unlimited.
  double pps = 0.0;
  /// Token-bucket burst capacity when pps > 0.
  int burst = 64;
  /// Merge the committed windows of concurrent traces into shared fleet
  /// bursts through a FleetTransportHub (see fleet_transport.h). Results
  /// are invariant: merging only changes wall-clock behaviour.
  bool merge_windows = false;
  /// Merged bursts that may be in flight at once (see
  /// FleetTransportHub::Config::pipeline_depth). 1 = strict
  /// resolve-before-next-burst; only meaningful with merge_windows.
  int pipeline_depth = 1;
  /// Registry the fleet's hub and limiter register their series in;
  /// null = each component falls back to a private registry. Must
  /// outlive the scheduler.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Everything a task callback gets handed: its identity, its private
/// random stream, and the shared limiter (nullptr when unlimited).
struct WorkerContext {
  std::size_t task_index;
  int worker_id;
  Rng rng;
  RateLimiter* limiter;
  /// The cross-trace window merger; nullptr unless config.merge_windows.
  /// Tasks that probe should open_channel() their transport over it —
  /// the hub already charges `limiter` per merged burst, so merged
  /// transports must NOT also be wrapped in ThrottledNetwork.
  FleetTransportHub* hub;
};

class FleetScheduler {
 public:
  explicit FleetScheduler(FleetConfig config);

  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }
  /// The shared fleet-wide limiter; nullptr when config().pps <= 0.
  [[nodiscard]] RateLimiter* limiter() noexcept { return limiter_.get(); }
  /// The cross-trace window merger; nullptr unless config().merge_windows.
  [[nodiscard]] FleetTransportHub* hub() noexcept { return hub_.get(); }
  /// The registry handed in via FleetConfig::metrics; nullptr when the
  /// run is uninstrumented.
  [[nodiscard]] obs::MetricsRegistry* metrics() noexcept {
    return config_.metrics;
  }

  /// Run tasks 0..task_count-1 through `trace` (callable on
  /// WorkerContext&, returning the per-task result). Returns all results
  /// in task order. `trace` runs concurrently on up to `jobs` threads;
  /// everything it touches besides its context must be immutable or
  /// task-private.
  template <typename TraceFn>
  [[nodiscard]] auto run(std::size_t task_count, TraceFn&& trace)
      -> std::vector<std::invoke_result_t<TraceFn&, WorkerContext&>> {
    return run(task_count, trace,
               [](std::size_t, std::invoke_result_t<TraceFn&, WorkerContext&>&) {});
  }

  /// Same, with streaming: `on_result(index, result&)` fires exactly once
  /// per task, in strictly increasing index order, while the fleet is
  /// still running (an internal reorder buffer holds back early
  /// finishers). It runs serialized — one call at a time — so it may
  /// write to shared sinks without locking, but must not block for long.
  template <typename TraceFn, typename OnResult>
  [[nodiscard]] auto run(std::size_t task_count, TraceFn&& trace,
                         OnResult&& on_result)
      -> std::vector<std::invoke_result_t<TraceFn&, WorkerContext&>> {
    return run_impl(task_count, trace, on_result, /*keep_results=*/true);
  }

  /// Streaming-only: every result is consumed by `on_result` (same
  /// ordering/serialization contract as run) and then dropped — nothing
  /// is retained or returned, so a survey's peak memory tracks the
  /// in-flight window rather than the task count. This is the shape all
  /// merge-at-join callers use.
  template <typename TraceFn, typename OnResult>
  void run_streaming(std::size_t task_count, TraceFn&& trace,
                     OnResult&& on_result) {
    (void)run_impl(task_count, trace, on_result, /*keep_results=*/false);
  }

 private:
  /// Shared state of one parallel run_impl call — a per-run local (run()
  /// is re-entrant), typed as a struct rather than loose locals so the
  /// guarded-field discipline is compiler-checked: the thread safety
  /// analysis tracks annotated members, never function locals.
  template <typename R>
  struct DrainState {
    Mutex mutex;
    std::vector<std::optional<R>> slots MMLPT_GUARDED_BY(mutex);
    std::size_t next_emit MMLPT_GUARDED_BY(mutex) = 0;
    /// Exactly one worker drains the reorder buffer at a time.
    bool draining MMLPT_GUARDED_BY(mutex) = false;
    std::exception_ptr first_error MMLPT_GUARDED_BY(mutex);
  };

  template <typename TraceFn, typename OnResult>
  [[nodiscard]] auto run_impl(std::size_t task_count, TraceFn&& trace,
                              OnResult&& on_result, bool keep_results)
      -> std::vector<std::invoke_result_t<TraceFn&, WorkerContext&>> {
    using R = std::invoke_result_t<TraceFn&, WorkerContext&>;

    const auto make_context = [this](std::size_t task, int worker) {
      return WorkerContext{task, worker, base_rng_.fork(task),
                           limiter_.get(), hub_.get()};
    };

    if (config_.jobs <= 1 || task_count <= 1) {
      // Serial path: bit-for-bit the pre-orchestrator loops.
      std::vector<R> results;
      if (keep_results) {
        results.reserve(task_count);
        for (std::size_t i = 0; i < task_count; ++i) {
          auto context = make_context(i, 0);
          results.push_back(trace(context));
          on_result(i, results.back());
        }
      } else {
        for (std::size_t i = 0; i < task_count; ++i) {
          auto context = make_context(i, 0);
          auto result = trace(context);
          on_result(i, result);
        }
      }
      return results;
    }

    DrainState<R> state;
    {
      // Pre-size the reorder buffer before any worker exists; the lock
      // only satisfies the guarded-field discipline.
      MutexLock lock(state.mutex);
      state.slots.resize(task_count);
    }
    std::atomic<std::size_t> next_task{0};
    std::atomic<bool> stop{false};

    const int jobs = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(config_.jobs), task_count));
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(jobs));
    for (int w = 0; w < jobs; ++w) {
      workers.emplace_back([&, w] {
        // relaxed on stop: advisory early-exit flag; the authoritative
        // error handoff happens under state.mutex.
        while (!stop.load(std::memory_order_relaxed)) {
          // relaxed on next_task: only atomicity of the claim matters —
          // each task's data stays private until published under the
          // mutex, so the relaxed increment orders nothing.
          const std::size_t i =
              next_task.fetch_add(1, std::memory_order_relaxed);
          if (i >= task_count) break;
          try {
            auto context = make_context(i, w);
            auto result = trace(context);
            bool drain;
            {
              MutexLock lock(state.mutex);
              state.slots[i] = std::move(result);
              drain = !state.draining;
              if (drain) state.draining = true;
            }
            if (!drain) continue;  // the current drainer will pick it up
            // Drain the contiguous prefix OUTSIDE the lock: on_result
            // may do real work (merge, JSON emit) and must not stall
            // the other workers' stores. The `draining` flag keeps the
            // calls serialized and in index order; a worker that stores
            // while we drain either is seen by our next lap or finds
            // the flag cleared and becomes the drainer itself.
            while (true) {
              std::size_t index = 0;
              R* ready = nullptr;
              {
                MutexLock lock(state.mutex);
                if (state.next_emit < task_count &&
                    state.slots[state.next_emit]) {
                  index = state.next_emit;
                  ready = &*state.slots[state.next_emit];
                } else {
                  state.draining = false;
                  break;
                }
              }
              // `ready` points into a slot no other thread touches while
              // the draining flag is ours, so the deref needs no lock.
              on_result(index, *ready);
              MutexLock lock(state.mutex);
              if (!keep_results) {
                state.slots[index].reset();  // streamed: drop it
              }
              ++state.next_emit;
            }
          } catch (...) {
            MutexLock lock(state.mutex);
            if (!state.first_error) {
              state.first_error = std::current_exception();
            }
            // relaxed: the store needs no ordering — workers that miss
            // it exit via the task counter or their own error path.
            stop.store(true, std::memory_order_relaxed);
            break;
          }
        }
      });
    }
    for (auto& worker : workers) worker.join();

    // Workers are joined: this thread is the only one left, but the
    // guarded fields still want their lock for the final reads.
    MutexLock lock(state.mutex);
    if (state.first_error) std::rethrow_exception(state.first_error);

    std::vector<R> results;
    if (keep_results) {
      results.reserve(task_count);
      for (auto& slot : state.slots) {
        MMLPT_ASSERT(slot.has_value());
        results.push_back(std::move(*slot));
      }
    }
    return results;
  }

  FleetConfig config_;
  Rng base_rng_;  ///< only fork(stream_id)ed — never drawn from
  std::unique_ptr<RateLimiter> limiter_;
  std::unique_ptr<FleetTransportHub> hub_;
};

}  // namespace mmlpt::orchestrator

#endif  // MMLPT_ORCHESTRATOR_FLEET_H
