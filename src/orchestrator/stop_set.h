// Fleet-wide Doubletree stop set shared by every scheduler worker, plus
// the session object that ties it to a persistent topology store.
//
// Determinism contract (frozen visible epoch): queries — contains(),
// destination(), midpoint_ttl() — only ever see the immutable `visible`
// set seeded from disk before any worker starts, so they are lock-free
// and their answers cannot depend on worker interleaving. Discoveries
// made during the run go to a mutex-guarded `pending` set that no query
// reads; they become visible to the NEXT run when flush() appends them
// to the store. This is what makes --jobs N output byte-identical to
// --jobs 1 given the same cache file.
#ifndef MMLPT_ORCHESTRATOR_STOP_SET_H
#define MMLPT_ORCHESTRATOR_STOP_SET_H

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/stop_set.h"
#include "core/trace_log.h"
#include "store/topology_store.h"

namespace mmlpt::obs {
class Counter;
class MetricsRegistry;
}  // namespace mmlpt::obs

namespace mmlpt::orchestrator {

/// Thread-safe core::StopSet with frozen-epoch semantics (see file
/// comment). seed() must complete before any concurrent use.
class SharedStopSet final : public core::StopSet {
 public:
  /// Install the frozen visible epoch. Not thread-safe; call once,
  /// before workers start. Also derives midpoint_ttl() as half the
  /// median known destination distance.
  void seed(const store::TopologySnapshot& snapshot);

  [[nodiscard]] bool contains(const net::IpAddress& addr,
                              int distance) const override;
  void record(const net::IpAddress& addr, int distance) override;
  [[nodiscard]] std::optional<core::DestinationRecord> destination(
      const net::IpAddress& addr) const override;
  void record_destination(const net::IpAddress& addr,
                          const core::DestinationRecord& record) override;
  [[nodiscard]] int midpoint_ttl() const override;

  /// This run's discoveries (pending only), sorted — the block to append
  /// to the store.
  [[nodiscard]] store::TopologySnapshot delta() const;

  /// visible ∪ pending, sorted — what the next run's epoch would be.
  [[nodiscard]] store::TopologySnapshot full_snapshot() const;

  /// FNV-1a digest over the sorted (interface, distance) union. Two runs
  /// discovered the same topology iff their digests match, regardless of
  /// how discovery was split between cache and probing.
  [[nodiscard]] std::uint64_t union_digest() const;

  [[nodiscard]] std::size_t visible_hop_count() const {
    return visible_.size();
  }
  [[nodiscard]] std::size_t pending_hop_count() const;

  /// Register the set's hit/record counters in `registry`. Call before
  /// workers start; uninstrumented queries pay one null-check.
  void instrument(obs::MetricsRegistry& registry);

 private:
  using Key = std::pair<net::IpAddress, int>;
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      return std::hash<net::IpAddress>{}(key.first) ^
             (static_cast<std::size_t>(key.second) * 0x9E3779B97F4A7C15ULL);
    }
  };

  // Frozen after seed(): read without locking.
  std::unordered_set<Key, KeyHash> visible_;
  std::unordered_map<net::IpAddress, core::DestinationRecord>
      visible_destinations_;
  int midpoint_ttl_ = 0;

  // This run's discoveries; ordered containers so delta() is already
  // sorted and deterministic.
  mutable Mutex mutex_;
  std::set<Key> pending_ MMLPT_GUARDED_BY(mutex_);
  std::map<net::IpAddress, core::DestinationRecord> pending_destinations_
      MMLPT_GUARDED_BY(mutex_);

  /// Null until instrument(), which (like seed()) must complete before
  /// workers start; frozen afterwards, so contains() stays lock-free.
  obs::Counter* hits_ = nullptr;
  obs::Counter* records_ = nullptr;
};

/// One CLI run's stop-set lifecycle: load the topology store at open,
/// seed the shared set, hand the pointer to trace configs, append the
/// run's delta at close.
///
/// An empty cache path means the feature is fully off: stop_set() is
/// nullptr, configure() leaves configs untouched, flush() is a no-op —
/// output stays byte-identical to a build without the feature.
class StopSetSession {
 public:
  /// `consult` false = record-only mode: discoveries are written to the
  /// store but never change probing, so output is byte-identical to a
  /// run without a stop set (cache warming with diffable output).
  StopSetSession(std::string cache_path, bool consult);

  [[nodiscard]] bool active() const noexcept { return !cache_path_.empty(); }
  [[nodiscard]] bool consult() const noexcept { return consult_; }

  /// Points config at the shared set (no-op when inactive).
  void configure(core::TraceConfig& config);

  /// Register the shared set's counters in `registry` (no-op when
  /// inactive).
  void instrument(obs::MetricsRegistry& registry) {
    if (active()) set_.instrument(registry);
  }

  /// Append this run's delta to the store (no-op when inactive or the
  /// delta is empty).
  void flush();

  [[nodiscard]] SharedStopSet* stop_set() noexcept {
    return active() ? &set_ : nullptr;
  }
  [[nodiscard]] const SharedStopSet* stop_set() const noexcept {
    return active() ? &set_ : nullptr;
  }
  /// How the store load went (blocks kept, damaged tail flag).
  [[nodiscard]] const store::TopologyStore::LoadResult& loaded()
      const noexcept {
    return loaded_;
  }

 private:
  std::string cache_path_;
  bool consult_ = true;
  store::TopologyStore::LoadResult loaded_;
  SharedStopSet set_;
};

}  // namespace mmlpt::orchestrator

#endif  // MMLPT_ORCHESTRATOR_STOP_SET_H
