# Opt-in sanitizer build mode:
#   cmake -B build -S . -DMMLPT_SANITIZE=address,undefined
# The value is passed verbatim to -fsanitize= on both compile and link
# lines of every mmlpt target (it rides on mmlpt_build_flags).
if(MMLPT_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR
      "MMLPT_SANITIZE requires gcc or clang (got ${CMAKE_CXX_COMPILER_ID})")
  endif()
  message(STATUS "mmlpt: sanitizers enabled: -fsanitize=${MMLPT_SANITIZE}")
  target_compile_options(mmlpt_build_flags INTERFACE
    -fsanitize=${MMLPT_SANITIZE}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all)
  target_link_options(mmlpt_build_flags INTERFACE
    -fsanitize=${MMLPT_SANITIZE})
endif()
