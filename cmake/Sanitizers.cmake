# Opt-in sanitizer build mode:
#   cmake -B build -S . -DMMLPT_SANITIZE=address,undefined
#   cmake -B build -S . -DMMLPT_SANITIZE=thread     # orchestrator/fleet CI
# The value is passed verbatim to -fsanitize= on both compile and link
# lines of every mmlpt target (it rides on mmlpt_build_flags).
if(MMLPT_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR
      "MMLPT_SANITIZE requires gcc or clang (got ${CMAKE_CXX_COMPILER_ID})")
  endif()
  # TSan owns the shadow memory ASan/LSan would use; the toolchains
  # reject the combination, so fail early with a clear message.
  if(MMLPT_SANITIZE MATCHES "thread" AND
     MMLPT_SANITIZE MATCHES "address|leak")
    message(FATAL_ERROR
      "MMLPT_SANITIZE=thread cannot be combined with address/leak "
      "(got '${MMLPT_SANITIZE}'); run them as separate builds")
  endif()
  message(STATUS "mmlpt: sanitizers enabled: -fsanitize=${MMLPT_SANITIZE}")
  target_compile_options(mmlpt_build_flags INTERFACE
    -fsanitize=${MMLPT_SANITIZE}
    -fno-omit-frame-pointer
    -fno-sanitize-recover=all)
  target_link_options(mmlpt_build_flags INTERFACE
    -fsanitize=${MMLPT_SANITIZE})
endif()
